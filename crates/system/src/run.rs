//! Measured results of one experiment run.

use fade::FadeStats;
use fade_sim::LogHistogram;

/// Handler work per software-classification class, in dynamic monitor
/// instructions (the quantity behind Figure 4(a)'s time breakdown).
#[derive(Clone, Copy, Debug, Default)]
pub struct ClassInstrs {
    /// Clean-check handlers.
    pub cc: u64,
    /// Redundant-update handlers.
    pub ru: u64,
    /// Short handlers after a passed partial check.
    pub partial: u64,
    /// Complex (unfilterable) handlers.
    pub complex: u64,
    /// Stack-update handling.
    pub stack: u64,
    /// High-level event handling.
    pub high_level: u64,
}

impl ClassInstrs {
    /// Total monitor instructions.
    pub fn total(&self) -> u64 {
        self.cc + self.ru + self.partial + self.complex + self.stack + self.high_level
    }

    /// Percentage of total for a component.
    pub fn pct(&self, component: u64) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            100.0 * component as f64 / t as f64
        }
    }
}

/// Two-core utilization breakdown (Figure 11(b)).
#[derive(Clone, Copy, Debug, Default)]
pub struct UtilBreakdown {
    /// Cycles the application core was idle because the event queue was
    /// full.
    pub app_idle: u64,
    /// Cycles the monitor core was idle (FADE filtered everything).
    pub monitor_idle: u64,
    /// Cycles both cores did useful work.
    pub both: u64,
}

impl UtilBreakdown {
    /// Total classified cycles.
    pub fn total(&self) -> u64 {
        self.app_idle + self.monitor_idle + self.both
    }

    /// `(app_idle %, monitor_idle %, both %)`.
    pub fn percentages(&self) -> (f64, f64, f64) {
        let t = self.total().max(1) as f64;
        (
            100.0 * self.app_idle as f64 / t,
            100.0 * self.monitor_idle as f64 / t,
            100.0 * self.both as f64 / t,
        )
    }
}

/// How a batched run's cycle count was estimated: the sampled
/// cycle-accurate windows and the extrapolation's 95% confidence bound
/// (see [`fade_sim::StratifiedEstimator`]).
#[derive(Clone, Debug)]
pub struct SamplingSummary {
    /// Cycle-accurate windows the estimate is built from.
    pub windows: usize,
    /// Instructions retired inside sampled windows (simulated exactly).
    pub sampled_instrs: u64,
    /// Cycles simulated exactly (sampled windows and drains).
    pub sampled_cycles: u64,
    /// Instructions retired on the batched path (extrapolated).
    pub extrapolated_instrs: u64,
    /// Monitored events drained on the batched path (extrapolated).
    pub extrapolated_events: u64,
    /// Exact base cycles of the batched stretches: per chunk, the
    /// binding constraint of the application side (replayed unimpeded
    /// on the real commit process) and the handler side (dispatched
    /// events charged at the monitor thread's standalone IPC).
    pub extrapolated_base_cycles: u64,
    /// Handler cycles of carried batch-stretch congestion seeded into
    /// the measured sampling windows (moved out of the base, simulated
    /// inside the windows), so windows start under the backpressure
    /// the batched path built up instead of from drained queues.
    pub carried_seed_cycles: u64,
    /// Sampled *residual* overhead (queueing, SMT interference,
    /// accelerator stalls, imperfect overlap) charged per batched
    /// event on top of the exact base.
    pub residual_per_event: f64,
    /// Relative half-width of the 95% confidence interval on the
    /// total cycle estimate — `(cycles_hi - cycles_lo) / 2` over the
    /// estimated cycles, the production rate's error bound. Only the
    /// sampled residual carries uncertainty; the simulated cycles and
    /// the deterministic base are exact, so the residual's absolute
    /// band divided by the full estimate is the rate's relative CI.
    /// `None` when fewer than two windows were sampled — a point
    /// estimate with no variance information.
    pub rel_half_width: Option<f64>,
    /// Lower confidence bound on the total cycle count.
    pub cycles_lo: u64,
    /// Upper confidence bound on the total cycle count.
    pub cycles_hi: u64,
    /// Per-congestion-stratum interval breakdown (one row per merged
    /// stratum, ascending key order): the windows, the stratum's own
    /// ratio and CI, and its control-variate coefficient when fitted.
    pub strata: Vec<fade_sim::StratumStat>,
}

/// Everything measured in one experiment run.
#[derive(Clone, Debug)]
pub struct RunStats {
    /// Benchmark name.
    pub benchmark: String,
    /// Monitor name.
    pub monitor: String,
    /// System label (accelerator, topology, core).
    pub system: String,
    /// Application instructions retired in the measured window.
    pub app_instrs: u64,
    /// Monitored instruction events produced.
    pub monitored_events: u64,
    /// Stack-update events produced.
    pub stack_events: u64,
    /// High-level events produced.
    pub high_level_events: u64,
    /// Cycles of the measured window. Exact for cycle-accurate runs; a
    /// sampled estimate (see `sampling`) for batched runs.
    pub cycles: u64,
    /// Cycles an unmonitored (application-only) system needs for the
    /// same instruction count.
    pub baseline_cycles: u64,
    /// Present when part of the window ran batched: how the cycle
    /// estimate was sampled and its confidence bounds.
    pub sampling: Option<SamplingSummary>,
    /// Accelerator statistics (FADE systems only), deltas over the
    /// measured window.
    pub fade: Option<FadeStats>,
    /// Software handler-class instruction counts.
    pub class_instrs: ClassInstrs,
    /// Event-queue occupancy distribution (sampled per cycle).
    pub occupancy: LogHistogram,
    /// Distance (in monitored events) between consecutive unfiltered
    /// events.
    pub unfiltered_distances: LogHistogram,
    /// Unfiltered burst sizes (bursts = gaps of at most 16 filterable
    /// events).
    pub burst_sizes: LogHistogram,
    /// Two-core utilization breakdown.
    pub util: UtilBreakdown,
}

impl RunStats {
    /// Monitoring slowdown versus the unmonitored application.
    pub fn slowdown(&self) -> f64 {
        self.cycles as f64 / self.baseline_cycles.max(1) as f64
    }

    /// Application IPC of the unmonitored system.
    pub fn app_ipc(&self) -> f64 {
        self.app_instrs as f64 / self.baseline_cycles.max(1) as f64
    }

    /// Monitored IPC: monitored events per *unmonitored* cycle — the
    /// event generation rate of Figure 2.
    pub fn monitored_ipc(&self) -> f64 {
        self.monitored_events as f64 / self.baseline_cycles.max(1) as f64
    }

    /// Filtering ratio (FADE systems; 0 for unaccelerated runs).
    pub fn filtering_ratio(&self) -> f64 {
        self.fade.map(|f| f.filtering_ratio()).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_instrs_percentages() {
        let c = ClassInstrs {
            cc: 50,
            ru: 25,
            partial: 0,
            complex: 15,
            stack: 10,
            high_level: 0,
        };
        assert_eq!(c.total(), 100);
        assert!((c.pct(c.cc) - 50.0).abs() < 1e-9);
        let empty = ClassInstrs::default();
        assert_eq!(empty.pct(0), 0.0);
    }

    #[test]
    fn util_percentages_sum_to_100() {
        let u = UtilBreakdown {
            app_idle: 30,
            monitor_idle: 50,
            both: 20,
        };
        let (a, m, b) = u.percentages();
        assert!((a + m + b - 100.0).abs() < 1e-9);
        assert!((a - 30.0).abs() < 1e-9);
    }

    #[test]
    fn derived_rates() {
        let stats = RunStats {
            benchmark: "x".into(),
            monitor: "y".into(),
            system: "z".into(),
            app_instrs: 1000,
            monitored_events: 400,
            stack_events: 0,
            high_level_events: 0,
            cycles: 2000,
            baseline_cycles: 1000,
            sampling: None,
            fade: None,
            class_instrs: ClassInstrs::default(),
            occupancy: LogHistogram::new(),
            unfiltered_distances: LogHistogram::new(),
            burst_sizes: LogHistogram::new(),
            util: UtilBreakdown::default(),
        };
        assert!((stats.slowdown() - 2.0).abs() < 1e-12);
        assert!((stats.app_ipc() - 1.0).abs() < 1e-12);
        assert!((stats.monitored_ipc() - 0.4).abs() < 1e-12);
        assert_eq!(stats.filtering_ratio(), 0.0);
    }
}
