//! Epoch-parallel speculative replay of a single trace.
//!
//! A recorded (or pre-generated) trace is split into contiguous
//! *epochs* at `.fadet` chunk boundaries. A cheap sequential predictor
//! pass — `MonitoringSystem::run_functional_slice`, the accelerator's
//! batched fast path with no timing machinery — walks the whole trace
//! once and snapshots a `SystemCheckpoint` at every epoch entry.
//! Each epoch then runs the *real* engine speculatively from its
//! predicted entry checkpoint, in parallel on the worker pool
//! ([`crate::pool::run_indexed`]).
//!
//! The join is validate-and-merge, sequential in epoch order: an
//! epoch's speculative result commits iff its entry digest equals the
//! committed predecessor's exit digest (epoch 0 validates against the
//! initial state). A mismatch — a *misprediction* — discards the
//! speculative result and re-runs the epoch from the committed
//! predecessor's exit checkpoint, which by induction is exact. Since
//! monitor-visible results are engine-invariant (bit-exact across
//! cycle/batched/vectorized execution and chunk boundaries), the
//! predictor is functionally exact and mispredictions only arise from
//! induced faults (the forced-staleness test hook) — but the join
//! never *assumes* that: every commit is digest-checked, so the merged
//! result is sequentially equivalent by construction.
//!
//! Determinism: the epoch partition derives from the trace and
//! configuration only, each epoch's commit process is reseeded from
//! `(config seed, epoch index)`, and the join commits in epoch order —
//! so results are bit-identical for any worker count, including 1.
//!
//! With a single worker (or a single epoch) speculation cannot win, so
//! the scheduler degenerates to an epoch *chain*: each epoch runs from
//! its committed predecessor's exit — the join's re-run path applied
//! everywhere — skipping the predictor pass and every digest walk.
//! That keeps single-worker overhead to the per-epoch engine rebuild
//! while still producing the same per-epoch results (and stats) as the
//! speculative path at any other worker count.

use std::sync::Arc;

use fade::BatchStats;
use fade_trace::{BenchProfile, TraceRecord};

use crate::config::SystemConfig;
use crate::pool::run_indexed;
use crate::system::{ExecMode, MonitoringSystem, SpanReplay, SystemCheckpoint};

/// Epochs a trace is split into (fewer when it has fewer chunks). The
/// count is a function of the trace alone — never of the worker count —
/// so replay results cannot depend on parallelism.
pub(crate) const DEFAULT_EPOCHS: usize = 8;

/// Instructions requested per engine call while driving an epoch (or a
/// sequential replay) to exhaustion.
pub(crate) const DRIVE_CHUNK: u64 = 200_000;

/// What the epoch scheduler did during a parallel replay.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EpochStats {
    /// Epochs the trace was split into (0 on the sequential path).
    pub epochs: u64,
    /// Speculative epoch results whose entry digest matched the
    /// committed predecessor's exit digest and were merged as-is.
    pub validated: u64,
    /// Mispredicted epochs discarded and re-run from the committed
    /// predecessor's exit state.
    pub rerun: u64,
}

/// The partition and knobs [`SessionBuilder::parallel_replay`]
/// materialized at build time.
///
/// [`SessionBuilder::parallel_replay`]: crate::SessionBuilder::parallel_replay
pub(crate) struct EpochPlan {
    /// Worker threads for the speculative phase (≥ 1; 1 takes the
    /// non-speculative epoch-chain path).
    pub(crate) workers: usize,
    /// The full decoded trace, shared zero-copy with every epoch.
    pub(crate) records: Arc<Vec<TraceRecord>>,
    /// End-exclusive record index of each `.fadet` chunk, cumulative —
    /// the only legal epoch split points.
    pub(crate) bounds: Vec<usize>,
    /// Test hook: poison this epoch's predicted entry checkpoint so the
    /// join must detect the stale state and re-run.
    pub(crate) stale_epoch: Option<usize>,
}

/// One epoch's speculative (or re-run, or chained) result.
struct EpochOutcome {
    exit: SystemCheckpoint,
    instrs: u64,
    cycles_est: u64,
    batch: BatchStats,
}

/// A committed parallel replay, merged across epochs in order.
pub(crate) struct MergedReplay {
    pub(crate) exit: SystemCheckpoint,
    pub(crate) instrs: u64,
    pub(crate) cycles_est: u64,
    pub(crate) batch: BatchStats,
    pub(crate) stats: EpochStats,
}

/// Partitions `bounds.len()` chunks into at most `max_epochs`
/// contiguous record spans, balanced by chunk count (the same
/// arithmetic as [`fade_trace::ChunkIndex::split_epochs`], so a file
/// and its decoded records split identically).
pub(crate) fn split_spans(
    bounds: &[usize],
    total: usize,
    max_epochs: usize,
) -> Vec<(usize, usize)> {
    if total == 0 {
        return Vec::new();
    }
    let n = bounds.len();
    if n == 0 {
        return vec![(0, total)];
    }
    let epochs = max_epochs.max(1).min(n);
    let mut spans = Vec::with_capacity(epochs);
    let mut start = 0usize;
    for e in 0..epochs {
        let end_chunk = ((e + 1) * n) / epochs;
        let end = bounds[end_chunk - 1].min(total);
        if end > start {
            spans.push((start, end));
            start = end;
        }
    }
    if start < total {
        spans.push((start, total));
    }
    spans
}

/// Runs one epoch's span with the real engine from `cp`.
fn run_epoch(
    bench: &BenchProfile,
    cfg: &SystemConfig,
    mode: ExecMode,
    cp: SystemCheckpoint,
    records: &Arc<Vec<TraceRecord>>,
    span: (usize, usize),
    epoch: u64,
) -> EpochOutcome {
    let source = Box::new(SpanReplay::new(Arc::clone(records), span));
    let mut sys = MonitoringSystem::from_checkpoint(bench, cfg, cp, source, epoch);
    while !sys.source_exhausted() && sys.source_error().is_none() {
        match mode {
            ExecMode::Cycle => sys.run_instrs(DRIVE_CHUNK),
            ExecMode::Batched => sys.run_batched(DRIVE_CHUNK),
        }
    }
    sys.drain();
    EpochOutcome {
        instrs: sys.instrs(),
        cycles_est: sys.estimated_total_cycles(),
        batch: sys.batch_stats(),
        exit: sys.into_checkpoint(),
    }
}

/// The full predict → speculate → validate-and-merge pipeline.
///
/// `predictor` is the session's own system (it owns the initial state
/// and the monitor); the functional pass consumes it, so the caller
/// must report results from the returned [`MergedReplay`], not from
/// the system.
pub(crate) fn replay_parallel(
    predictor: &mut MonitoringSystem,
    bench: &BenchProfile,
    cfg: &SystemConfig,
    mode: ExecMode,
    plan: &EpochPlan,
) -> MergedReplay {
    let spans = split_spans(&plan.bounds, plan.records.len(), DEFAULT_EPOCHS);
    let initial = predictor
        .checkpoint()
        .expect("parallel replay requires a forkable monitor (checked at plan time)");
    if spans.is_empty() {
        return MergedReplay {
            exit: initial,
            instrs: 0,
            cycles_est: 0,
            batch: BatchStats::default(),
            stats: EpochStats { epochs: 0, validated: 0, rerun: 0 },
        };
    }

    // ---- Degenerate parallelism: with one worker (or one epoch)
    // speculation buys nothing, so run the epoch chain directly — each
    // epoch from its committed predecessor's exit. This is exactly the
    // join's re-run path ("every prediction misses"), which the
    // forced-misprediction regression proves bit-identical to a
    // validated speculative epoch, with the predictor pass and every
    // digest walk elided: entry states *are* predecessor exits by
    // construction, so each epoch counts as validated and the merged
    // result is the same as at any other worker count. This is what
    // keeps the single-worker overhead vs. plain sequential replay to
    // the per-epoch engine rebuild alone.
    if plan.workers == 1 || spans.len() == 1 {
        // The chain never mispredicts (there are no predictions), so
        // the staleness hook has nothing to poison and every epoch
        // counts as validated — matching the speculative path's stats.
        let stats = EpochStats {
            epochs: spans.len() as u64,
            validated: spans.len() as u64,
            rerun: 0,
        };
        let mut prev = initial;
        let mut instrs = 0u64;
        let mut cycles_est = 0u64;
        let mut batch = BatchStats::default();
        for (i, &span) in spans.iter().enumerate() {
            let outcome = run_epoch(bench, cfg, mode, prev, &plan.records, span, i as u64);
            instrs += outcome.instrs;
            cycles_est += outcome.cycles_est;
            batch.merge(&outcome.batch);
            prev = outcome.exit;
        }
        return MergedReplay { exit: prev, instrs, cycles_est, batch, stats };
    }

    // ---- Predict: one cheap functional pass over the whole trace,
    // snapshotting the entry state of every epoch. ----
    let mut entries = Vec::with_capacity(spans.len());
    for (i, &(a, b)) in spans.iter().enumerate() {
        entries.push(if i == 0 {
            initial.replicate()
        } else {
            predictor
                .checkpoint()
                .expect("forkability cannot change mid-run")
        });
        if i + 1 < spans.len() {
            predictor.run_functional_slice(&plan.records[a..b]);
        }
    }
    if let Some(e) = plan.stale_epoch {
        if let Some(entry) = entries.get_mut(e) {
            // Flip one shadow byte: a minimal stale prediction. The
            // digest mismatch must force a re-run; the re-run starts
            // from the committed predecessor, so the final result is
            // still exact.
            let addr = fade_isa::VirtAddr::new(0x6000_0000);
            let cur = entry.state.mem_meta(addr);
            entry.state.set_mem_meta(addr, cur ^ 0x5a);
        }
    }

    // ---- Speculate: every epoch runs the real engine in parallel
    // from its predicted entry checkpoint, digesting that checkpoint
    // on the worker before it runs (entry digests parallelize for
    // free). Checkpoints are handed out through take-once slots
    // (Box<dyn Monitor> is Send, not Sync). ----
    let slots: Vec<std::sync::Mutex<Option<SystemCheckpoint>>> = entries
        .into_iter()
        .map(|cp| std::sync::Mutex::new(Some(cp)))
        .collect();
    let outcomes = run_indexed(plan.workers, spans.len(), |i| {
        let cp = slots[i]
            .lock()
            .unwrap()
            .take()
            .expect("each epoch claims its checkpoint once");
        let entry_digest = cp.digest();
        let outcome = run_epoch(bench, cfg, mode, cp, &plan.records, spans[i], i as u64);
        let exit_digest = outcome.exit.digest();
        (entry_digest, exit_digest, outcome)
    });

    // ---- Validate and merge, sequential in epoch order. ----
    let mut stats = EpochStats {
        epochs: spans.len() as u64,
        validated: 0,
        rerun: 0,
    };
    let initial_digest = initial.digest();
    let mut prev_exit = initial;
    let mut prev_digest = initial_digest;
    let mut instrs = 0u64;
    let mut cycles_est = 0u64;
    let mut batch = BatchStats::default();
    for (i, (entry_digest, exit_digest, speculative)) in outcomes.into_iter().enumerate() {
        let (outcome, outcome_digest) = if entry_digest == prev_digest {
            stats.validated += 1;
            (speculative, exit_digest)
        } else {
            stats.rerun += 1;
            let rerun = run_epoch(
                bench,
                cfg,
                mode,
                prev_exit.replicate(),
                &plan.records,
                spans[i],
                i as u64,
            );
            let d = rerun.exit.digest();
            (rerun, d)
        };
        instrs += outcome.instrs;
        cycles_est += outcome.cycles_est;
        batch.merge(&outcome.batch);
        prev_digest = outcome_digest;
        prev_exit = outcome.exit;
    }
    MergedReplay {
        exit: prev_exit,
        instrs,
        cycles_est,
        batch,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::split_spans;

    #[test]
    fn spans_are_contiguous_and_cover_the_trace() {
        let bounds = [10, 25, 30, 47, 60, 61, 80, 95, 100];
        for epochs in 1..=12 {
            let spans = split_spans(&bounds, 100, epochs);
            assert!(spans.len() <= epochs.min(bounds.len()));
            assert_eq!(spans.first().unwrap().0, 0);
            assert_eq!(spans.last().unwrap().1, 100);
            for w in spans.windows(2) {
                assert_eq!(w[0].1, w[1].0, "gap between spans");
            }
            // Every split point is a chunk boundary.
            for &(_, end) in &spans[..spans.len() - 1] {
                assert!(bounds.contains(&end), "{end} is not a chunk boundary");
            }
        }
    }

    #[test]
    fn degenerate_partitions() {
        assert!(split_spans(&[], 0, 4).is_empty());
        assert_eq!(split_spans(&[], 7, 4), vec![(0, 7)]);
        assert_eq!(split_spans(&[7], 7, 4), vec![(0, 7)]);
    }
}
