//! System configurations (Figure 8 and Section 6 of the paper).

use fade::FilterMode;
use fade_sim::{CoreKind, QueueDepth};

/// Where the application and monitor threads run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// One fine-grained dual-threaded core shared by the application
    /// and monitor threads (Figure 8(b)); minimizes resources.
    SingleCoreDualThread,
    /// Separate application and monitor cores (Figure 8(a));
    /// maximizes concurrency.
    TwoCore,
}

impl std::fmt::Display for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Topology::SingleCoreDualThread => "single-core",
            Topology::TwoCore => "two-core",
        })
    }
}

/// Whether the system includes the FADE accelerator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Accel {
    /// Unaccelerated: application and monitor communicate through a
    /// single queue; every monitored event runs a software handler.
    None,
    /// FADE-enabled, in the given filtering mode.
    Fade(FilterMode),
}

/// A complete system configuration.
#[derive(Clone, Copy, Debug)]
pub struct SystemConfig {
    /// Core microarchitecture (both cores in two-core systems).
    pub core: CoreKind,
    /// Thread placement.
    pub topology: Topology,
    /// Accelerator presence/mode.
    pub accel: Accel,
    /// Event queue depth (app → FADE, or app → monitor when
    /// unaccelerated). Paper default: 32.
    pub event_queue: QueueDepth,
    /// Unfiltered event queue depth (FADE → monitor). Paper default: 16.
    pub unfiltered_queue: QueueDepth,
    /// Simulation seed (workload and commit process).
    pub seed: u64,
    /// Batched execution mode: length of one sampling period, in
    /// monitored events. Each period runs `sample_period -
    /// sample_window` events through the batched fast path and the
    /// remaining `sample_window` through the cycle-accurate engine.
    /// `1` degenerates to pure cycle-accurate execution; a period no
    /// smaller than the trace degenerates to pure batching (no timing
    /// samples). Ignored by [`MonitoringSystem::run_instrs`].
    ///
    /// [`MonitoringSystem::run_instrs`]: crate::MonitoringSystem::run_instrs
    pub sample_period: u64,
    /// Batched execution mode: cycle-accurate events per sampling
    /// period (clamped to `sample_period`). Larger windows cost
    /// throughput but tighten the cycle estimate.
    pub sample_window: u64,
    /// Section 3.2's idealized study: the filtering accelerator
    /// consumes exactly one event per cycle (no metadata misses, free
    /// software handlers, unbounded unfiltered queue). Used by the
    /// Figure 3 experiments only.
    pub ideal_consumer: bool,
    /// Shadow-memory page budget: at most this many shadow pages are
    /// kept fully resident; colder clean pages are compacted or
    /// RLE-evicted losslessly and refault on the next write
    /// ([`fade_shadow::ShadowMemory::set_budget`]). `None` (the
    /// default) keeps every touched page resident.
    pub shadow_page_budget: Option<usize>,
    /// Hard cap on total shadow-memory bytes (resident frames plus
    /// compressed evictions). Unlike the page budget — which only
    /// trades memory for refault work — exceeding this cap latches a
    /// typed [`fade_shadow::BudgetExceeded`] on the session. `None`
    /// (the default) means uncapped.
    pub shadow_mem_cap_bytes: Option<usize>,
    /// Batched execution mode: SoA lane width of the vectorized
    /// filtering kernel. `1` (the default) runs the scalar per-event
    /// tier-A loop; `2..=`[`fade_isa::BLOCK_LANES`] groups consecutive
    /// instruction events into structure-of-arrays blocks and filters
    /// them data-parallel ([`fade::Fade::run_batch_vectorized`]),
    /// bit-exact with the scalar loop. Clamped to the valid range at
    /// use. Ignored by the cycle-accurate engine and the sampling
    /// windows, which are always cycle-exact.
    pub batch_lanes: usize,
    /// Hardware-parameter overrides for sensitivity sweeps.
    pub tweaks: FadeTweaks,
}

/// Optional overrides of FADE's hardware parameters (the sensitivity
/// analysis the paper mentions but omits for space, Section 6).
#[derive(Clone, Copy, Debug, Default)]
pub struct FadeTweaks {
    /// MD cache capacity in bytes (2-way, 64 B lines).
    pub md_cache_bytes: Option<u32>,
    /// M-TLB entries.
    pub tlb_entries: Option<usize>,
    /// Filter store queue entries.
    pub fsq_entries: Option<usize>,
}

impl SystemConfig {
    /// Default sampling period of batched execution (monitored events):
    /// one cycle-accurate window per 16K events.
    pub const DEFAULT_SAMPLE_PERIOD: u64 = 16_384;
    /// Default cycle-accurate window length (monitored events): 1/4 of
    /// the period is simulated exactly, which keeps the extrapolated
    /// cycle estimate within a few percent of a full cycle-accurate run
    /// while the other 3/4 of the stream takes the batched fast path.
    /// Windows need to be long: commit run/stall phases and
    /// queue-congestion episodes play out over thousands of events,
    /// and the congestion-carrying window (seed at entry, steady-state
    /// tail residual) needs a tail of at least 1024 events to engage —
    /// shorter windows fall back to whole-window recording, where
    /// boundary effects dominate the sample.
    pub const DEFAULT_SAMPLE_WINDOW: u64 = 4_096;

    /// The headline configuration: single-core dual-threaded 4-way OoO
    /// with Non-Blocking FADE (used for Figure 9 and Table 2).
    pub fn fade_single_core() -> Self {
        SystemConfig {
            core: CoreKind::AggrOoO4,
            topology: Topology::SingleCoreDualThread,
            accel: Accel::Fade(FilterMode::NonBlocking),
            event_queue: QueueDepth::Bounded(32),
            unfiltered_queue: QueueDepth::Bounded(16),
            seed: 0x5eed,
            sample_period: Self::DEFAULT_SAMPLE_PERIOD,
            sample_window: Self::DEFAULT_SAMPLE_WINDOW,
            ideal_consumer: false,
            shadow_page_budget: None,
            shadow_mem_cap_bytes: None,
            batch_lanes: 1,
            tweaks: FadeTweaks::default(),
        }
    }

    /// The unaccelerated counterpart of [`SystemConfig::fade_single_core`].
    pub fn unaccelerated_single_core() -> Self {
        SystemConfig {
            accel: Accel::None,
            ..Self::fade_single_core()
        }
    }

    /// Two-core FADE system (Figure 11(a,b)).
    pub fn fade_two_core() -> Self {
        SystemConfig {
            topology: Topology::TwoCore,
            ..Self::fade_single_core()
        }
    }

    /// Two-core unaccelerated system.
    pub fn unaccelerated_two_core() -> Self {
        SystemConfig {
            accel: Accel::None,
            topology: Topology::TwoCore,
            ..Self::fade_single_core()
        }
    }

    /// Replaces the core kind.
    pub fn with_core(mut self, core: CoreKind) -> Self {
        self.core = core;
        self
    }

    /// Replaces the event-queue depth.
    pub fn with_event_queue(mut self, depth: QueueDepth) -> Self {
        self.event_queue = depth;
        self
    }

    /// Replaces the filtering mode (no-op for unaccelerated systems).
    pub fn with_mode(mut self, mode: FilterMode) -> Self {
        if let Accel::Fade(_) = self.accel {
            self.accel = Accel::Fade(mode);
        }
        self
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the batched-mode sampling period (monitored events per
    /// period; clamped to at least 1 at use).
    pub fn with_sample_period(mut self, period: u64) -> Self {
        self.sample_period = period;
        self
    }

    /// Replaces the batched-mode cycle-accurate window length
    /// (monitored events per period simulated exactly).
    pub fn with_sample_window(mut self, window: u64) -> Self {
        self.sample_window = window;
        self
    }

    /// Enables the idealized one-event-per-cycle consumer (Section 3.2).
    pub fn with_ideal_consumer(mut self) -> Self {
        self.ideal_consumer = true;
        self
    }

    /// Bounds resident shadow memory to `pages` full page frames
    /// (clamped to at least 1 at use); colder clean pages are
    /// losslessly compacted or RLE-evicted and refault on write.
    /// Monitor-visible results are bit-exact with the unbounded
    /// default — only memory footprint and eviction work change.
    pub fn with_shadow_page_budget(mut self, pages: usize) -> Self {
        self.shadow_page_budget = Some(pages);
        self
    }

    /// Hard-caps total shadow-memory bytes; exceeding the cap latches
    /// a typed [`fade_shadow::BudgetExceeded`] the session surfaces as
    /// an error after the run.
    pub fn with_shadow_mem_cap(mut self, bytes: usize) -> Self {
        self.shadow_mem_cap_bytes = Some(bytes);
        self
    }

    /// Selects the batched engine's SoA lane width: `1` is the scalar
    /// per-event loop, wider runs the vectorized kernel (bit-exact;
    /// clamped to `1..=`[`fade_isa::BLOCK_LANES`] at use).
    pub fn with_batch_lanes(mut self, lanes: usize) -> Self {
        self.batch_lanes = lanes;
        self
    }

    /// Overrides the MD cache capacity (sensitivity sweeps).
    pub fn with_md_cache_bytes(mut self, bytes: u32) -> Self {
        self.tweaks.md_cache_bytes = Some(bytes);
        self
    }

    /// Overrides the M-TLB entry count (sensitivity sweeps).
    pub fn with_tlb_entries(mut self, entries: usize) -> Self {
        self.tweaks.tlb_entries = Some(entries);
        self
    }

    /// Overrides the FSQ entry count (sensitivity sweeps).
    pub fn with_fsq_entries(mut self, entries: usize) -> Self {
        self.tweaks.fsq_entries = Some(entries);
        self
    }

    /// Short description for experiment tables.
    pub fn label(&self) -> String {
        let accel = match self.accel {
            Accel::None => "unaccel".to_string(),
            Accel::Fade(FilterMode::Blocking) => "FADE-B".to_string(),
            Accel::Fade(FilterMode::NonBlocking) => "FADE".to_string(),
        };
        format!("{} {} {}", accel, self.topology, self.core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_the_right_knobs() {
        let f = SystemConfig::fade_single_core();
        let u = SystemConfig::unaccelerated_single_core();
        assert_eq!(f.topology, Topology::SingleCoreDualThread);
        assert!(matches!(f.accel, Accel::Fade(FilterMode::NonBlocking)));
        assert!(matches!(u.accel, Accel::None));
        assert_eq!(SystemConfig::fade_two_core().topology, Topology::TwoCore);
    }

    #[test]
    fn batch_lanes_defaults_to_scalar() {
        assert_eq!(SystemConfig::fade_single_core().batch_lanes, 1);
        let c = SystemConfig::fade_single_core().with_batch_lanes(16);
        assert_eq!(c.batch_lanes, 16);
    }

    #[test]
    fn builder_methods() {
        let c = SystemConfig::fade_single_core()
            .with_core(CoreKind::InOrder1)
            .with_mode(FilterMode::Blocking)
            .with_event_queue(QueueDepth::Unbounded)
            .with_seed(9);
        assert_eq!(c.core, CoreKind::InOrder1);
        assert!(matches!(c.accel, Accel::Fade(FilterMode::Blocking)));
        assert_eq!(c.event_queue, QueueDepth::Unbounded);
        assert_eq!(c.seed, 9);
        // with_mode on unaccelerated is a no-op.
        let u = SystemConfig::unaccelerated_single_core().with_mode(FilterMode::Blocking);
        assert!(matches!(u.accel, Accel::None));
    }

    #[test]
    fn sampling_knobs() {
        let c = SystemConfig::fade_single_core();
        assert_eq!(c.sample_period, SystemConfig::DEFAULT_SAMPLE_PERIOD);
        assert_eq!(c.sample_window, SystemConfig::DEFAULT_SAMPLE_WINDOW);
        assert!(c.sample_window <= c.sample_period);
        let c = c.with_sample_period(64).with_sample_window(16);
        assert_eq!(c.sample_period, 64);
        assert_eq!(c.sample_window, 16);
    }

    #[test]
    fn shadow_budget_knobs() {
        let c = SystemConfig::fade_single_core();
        assert!(c.shadow_page_budget.is_none());
        assert!(c.shadow_mem_cap_bytes.is_none());
        let c = c.with_shadow_page_budget(8).with_shadow_mem_cap(1 << 20);
        assert_eq!(c.shadow_page_budget, Some(8));
        assert_eq!(c.shadow_mem_cap_bytes, Some(1 << 20));
    }

    #[test]
    fn labels_are_distinct() {
        assert_ne!(
            SystemConfig::fade_single_core().label(),
            SystemConfig::unaccelerated_single_core().label()
        );
        assert!(SystemConfig::fade_single_core().label().contains("FADE"));
    }
}
