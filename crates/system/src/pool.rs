//! Work-stealing execution primitives, shared by the experiment
//! matrix driver (`fade-bench`) and the `faded` monitoring service
//! (`fade-service`).
//!
//! Two shapes of the same scheduling idea — workers claim the next
//! undone piece of work, so a slow piece never stalls its siblings:
//!
//! * [`run_indexed`] — the *static* shape: a known, fixed number of
//!   independent tasks, fanned out over scoped worker threads, results
//!   returned **in index order** regardless of which worker ran what.
//!   This is the scheduler core `fade_bench::ExperimentMatrix` runs on.
//! * [`WorkerPool`] — the *dynamic* shape: a long-lived fixed pool of
//!   worker threads draining a shared job queue, for callers (the
//!   `faded` daemon) whose work arrives over time rather than as a
//!   batch. Jobs are panic-isolated: a panicking job is swallowed at
//!   the job boundary and its worker lives on to claim the next job.
//!
//! Neither shape imposes ordering between concurrent pieces of work;
//! determinism is the *caller's* property (every task must derive its
//! results from its own inputs, never from placement), which is exactly
//! the contract the matrix's determinism-under-sharding tests pin.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Runs `f(0..n)` across up to `workers` scoped threads with a
/// work-stealing claim index, returning the results **in index order**.
///
/// The worker count is clamped to `1..=n` (a single worker degrades to
/// a plain sequential loop — same results by construction). `f` runs
/// concurrently from several threads and must be `Sync`.
///
/// # Panics
///
/// If `f` itself panics the panic propagates out of the scope and tears
/// the whole call down. Callers that want per-task isolation wrap their
/// task body in [`std::panic::catch_unwind`] and return the outcome as
/// a `Result` value — see `fade_bench::ExperimentMatrix`, which maps
/// panics to typed error rows.
pub fn run_indexed<T, F>(workers: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.clamp(1, n.max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(i);
                *slots[i].lock().expect("no worker panicked holding a slot") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no worker panicked holding a slot")
                .expect("scope joined every worker, so every slot is filled")
        })
        .collect()
}

/// A queued unit of pool work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Queue state shared between the pool handle and its workers.
struct PoolState {
    jobs: VecDeque<Job>,
    /// Jobs currently executing on a worker.
    active: usize,
    /// Set once: accept no new jobs, drain the queue, then exit.
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signals workers: a job arrived or shutdown was requested.
    work: Condvar,
    /// Signals waiters: the pool may have gone idle.
    idle: Condvar,
}

/// A fixed pool of long-lived worker threads draining a shared job
/// queue — the dynamic counterpart of [`run_indexed`], for work that
/// arrives over time (one job per tenant session in the `faded`
/// daemon).
///
/// * **Work-stealing:** any idle worker claims the next queued job;
///   a long job occupies one worker while the rest keep draining.
/// * **Panic isolation:** a job that panics is caught at the job
///   boundary; the worker survives and claims the next job. (Pool
///   users that must *report* the panic catch it themselves inside the
///   job — the pool-level guard is the backstop that keeps one bad job
///   from killing every job queued behind it.)
/// * **Shutdown:** dropping the pool (or calling
///   [`WorkerPool::shutdown`]) stops intake, drains every job already
///   queued, and joins the workers.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns a pool of `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                jobs: VecDeque::new(),
                active: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Queues a job for the next idle worker.
    ///
    /// # Panics
    ///
    /// Panics if called after [`WorkerPool::shutdown`] began (callers
    /// own the pool, so submitting into a shutdown pool is a caller
    /// bug, not a runtime condition).
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        let mut state = self.shared.state.lock().expect("pool state poisoned");
        assert!(!state.shutdown, "submit on a shut-down WorkerPool");
        state.jobs.push_back(Box::new(job));
        drop(state);
        self.shared.work.notify_one();
    }

    /// Jobs queued but not yet claimed, plus jobs currently executing.
    pub fn pending(&self) -> usize {
        let state = self.shared.state.lock().expect("pool state poisoned");
        state.jobs.len() + state.active
    }

    /// Blocks until every queued and executing job has finished.
    pub fn wait_idle(&self) {
        let mut state = self.shared.state.lock().expect("pool state poisoned");
        while !state.jobs.is_empty() || state.active > 0 {
            state = self.shared.idle.wait(state).expect("pool state poisoned");
        }
    }

    /// Stops intake, drains every queued job, and joins the workers.
    /// (Equivalent to dropping the pool, but explicit at call sites
    /// where the drain matters.)
    pub fn shutdown(self) {}
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool state poisoned");
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool state poisoned");
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    state.active += 1;
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared.work.wait(state).expect("pool state poisoned");
            }
        };
        // The backstop guard: a panicking job must not take the worker
        // (and with it every job queued behind this one) down.
        let _ = catch_unwind(AssertUnwindSafe(job));
        let mut state = shared.state.lock().expect("pool state poisoned");
        state.active -= 1;
        if state.jobs.is_empty() && state.active == 0 {
            shared.idle.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn run_indexed_returns_results_in_index_order() {
        let out = run_indexed(4, 100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn run_indexed_handles_edge_worker_counts() {
        assert_eq!(run_indexed(0, 3, |i| i), vec![0, 1, 2]);
        assert_eq!(run_indexed(64, 2, |i| i), vec![0, 1]);
        assert!(run_indexed(4, 0, |i| i).is_empty());
    }

    #[test]
    fn run_indexed_runs_every_index_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        run_indexed(8, hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn pool_executes_every_submitted_job() {
        let pool = WorkerPool::new(4);
        let sum = Arc::new(AtomicU64::new(0));
        for i in 1..=100u64 {
            let sum = Arc::clone(&sum);
            pool.submit(move || {
                sum.fetch_add(i, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
        pool.shutdown();
    }

    #[test]
    fn pool_survives_panicking_jobs() {
        let pool = WorkerPool::new(2);
        let done = Arc::new(AtomicUsize::new(0));
        for i in 0..20 {
            let done = Arc::clone(&done);
            pool.submit(move || {
                if i % 3 == 0 {
                    panic!("deliberate job panic (pool isolation test)");
                }
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(done.load(Ordering::Relaxed), 13, "every non-panicking job ran");
        // Workers are still alive: a fresh job after the panics runs.
        let done2 = Arc::clone(&done);
        pool.submit(move || {
            done2.fetch_add(1, Ordering::Relaxed);
        });
        pool.wait_idle();
        assert_eq!(done.load(Ordering::Relaxed), 14);
    }

    #[test]
    fn drop_drains_queued_jobs() {
        let done = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(1);
            for _ in 0..50 {
                let done = Arc::clone(&done);
                pool.submit(move || {
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
            // Dropped immediately: intake stops, but everything queued
            // still runs.
        }
        assert_eq!(done.load(Ordering::Relaxed), 50);
    }
}
