//! Property tests for batched session execution: monitor-visible
//! results never depend on the sampling schedule, and a batched session
//! composes across `run` call boundaries (resume is bit-exact).

use fade_system::{Engine, Session, SystemConfig};
use fade_trace::bench;
use proptest::prelude::*;

/// Everything a monitor (or a user of its results) can observe, in one
/// comparable/hashable bundle. Cycle counts are deliberately absent —
/// batched timing is a sampled estimate.
#[derive(Debug, PartialEq)]
struct VisibleState {
    instrs: u64,
    events: u64,
    state: fade_shadow::MetadataState,
    reports: Vec<String>,
    fade_functional: Option<[u64; 7]>,
}

fn visible(sys: &Session) -> VisibleState {
    VisibleState {
        instrs: sys.instrs(),
        events: sys.events_seen(),
        state: sys.state().clone(),
        reports: sys.monitor().reports(),
        fade_functional: sys.fade_stats().map(|f| f.functional_counters()),
    }
}

fn session(bench_name: &str, monitor: &str, engine: Engine, cfg: &SystemConfig) -> Session {
    Session::builder()
        .monitor(monitor)
        .source(bench::by_name(bench_name).unwrap())
        .engine(engine)
        .config(*cfg)
        .build()
        .unwrap()
}

fn run_batched(bench_name: &str, monitor: &str, k: u64, w: u64, instrs: u64) -> VisibleState {
    let cfg = SystemConfig::fade_single_core()
        .with_sample_period(k)
        .with_sample_window(w);
    let mut sys = session(bench_name, monitor, Engine::batched(), &cfg);
    sys.run(instrs);
    sys.drain();
    visible(&sys)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any sampling period K and window W — including K=1 (pure cycle
    /// engine) and K beyond the trace length (pure batching) — yields
    /// the same monitor-visible results as the cycle-accurate
    /// reference.
    #[test]
    fn sampling_schedule_never_changes_monitor_results(
        k in prop_oneof![
            Just(1u64),
            2u64..64,
            64u64..4096,
            Just(1u64 << 40), // far beyond any trace: pure batch mode
        ],
        w_frac in 0u64..=4,
        monitor_idx in 0usize..3,
        seed_instrs in 6_000u64..10_000,
    ) {
        let monitor = ["AddrCheck", "MemLeak", "TaintCheck"][monitor_idx];
        let bench_name = if monitor == "TaintCheck" { "mcf-taint" } else { "gcc" };
        let w = (k * w_frac / 4).max(1);

        let mut reference = session(
            bench_name,
            monitor,
            Engine::Cycle,
            &SystemConfig::fade_single_core(),
        );
        reference.run_exact(seed_instrs);
        reference.drain();

        let got = run_batched(bench_name, monitor, k, w, seed_instrs);
        prop_assert_eq!(&got, &visible(&reference));
    }

    /// `run(a); run(b)` on a batched session consumes the same trace
    /// and produces the same monitor-visible results as `run(a+b)` —
    /// the batched engine resumes bit-exactly at call boundaries,
    /// wherever they fall relative to the sampling schedule.
    #[test]
    fn run_batched_composes_across_call_boundaries(
        a in 1_000u64..8_000,
        b_instrs in 1_000u64..8_000,
        k in prop_oneof![Just(1u64), 128u64..2048, Just(1u64 << 40)],
        monitor_idx in 0usize..2,
    ) {
        let monitor = ["AddrCheck", "MemLeak"][monitor_idx];
        let cfg = SystemConfig::fade_single_core()
            .with_sample_period(k)
            .with_sample_window((k / 4).max(1));

        let mut split = session("astar", monitor, Engine::batched(), &cfg);
        split.run(a);
        split.run(b_instrs);
        split.drain();

        let mut whole = session("astar", monitor, Engine::batched(), &cfg);
        whole.run(a + b_instrs);
        whole.drain();

        prop_assert_eq!(&visible(&split), &visible(&whole));
    }
}

/// The W >= K degenerate case runs fully cycle-accurately: timing is
/// exact, batch counters stay zero.
#[test]
fn window_covering_period_is_pure_cycle_mode() {
    let cfg = SystemConfig::fade_single_core()
        .with_sample_period(256)
        .with_sample_window(512);
    let mut sys = session("mcf", "AddrCheck", Engine::batched(), &cfg);
    sys.run(10_000);
    sys.drain();
    let mut reference = session("mcf", "AddrCheck", Engine::Cycle, &cfg);
    reference.run_exact(10_000);
    reference.drain();
    assert_eq!(sys.cycles(), reference.cycles(), "pure cycle mode is exact");
    assert_eq!(sys.estimated_total_cycles(), sys.cycles());
    assert_eq!(sys.batch_stats().events, 0);
}
