//! Property tests for batched session execution: monitor-visible
//! results never depend on the sampling schedule, and a batched session
//! composes across `run` call boundaries (resume is bit-exact).

use fade_system::{Engine, Session, SystemConfig};
use fade_trace::bench;
use proptest::prelude::*;

/// Everything a monitor (or a user of its results) can observe, in one
/// comparable/hashable bundle. Cycle counts are deliberately absent —
/// batched timing is a sampled estimate.
#[derive(Debug, PartialEq)]
struct VisibleState {
    instrs: u64,
    events: u64,
    state: fade_shadow::MetadataState,
    reports: Vec<String>,
    fade_functional: Option<[u64; 7]>,
}

fn visible(sys: &Session) -> VisibleState {
    VisibleState {
        instrs: sys.instrs(),
        events: sys.events_seen(),
        state: sys.state().clone(),
        reports: sys.monitor().reports(),
        fade_functional: sys.fade_stats().map(|f| f.functional_counters()),
    }
}

fn session(bench_name: &str, monitor: &str, engine: Engine, cfg: &SystemConfig) -> Session {
    Session::builder()
        .monitor(monitor)
        .source(bench::by_name(bench_name).unwrap())
        .engine(engine)
        .config(*cfg)
        .build()
        .unwrap()
}

fn run_batched(bench_name: &str, monitor: &str, k: u64, w: u64, instrs: u64) -> VisibleState {
    let cfg = SystemConfig::fade_single_core()
        .with_sample_period(k)
        .with_sample_window(w);
    let mut sys = session(bench_name, monitor, Engine::batched(), &cfg);
    sys.run(instrs).unwrap();
    sys.drain().unwrap();
    visible(&sys)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any sampling period K and window W — including K=1 (pure cycle
    /// engine) and K beyond the trace length (pure batching) — yields
    /// the same monitor-visible results as the cycle-accurate
    /// reference.
    #[test]
    fn sampling_schedule_never_changes_monitor_results(
        k in prop_oneof![
            Just(1u64),
            2u64..64,
            64u64..4096,
            Just(1u64 << 40), // far beyond any trace: pure batch mode
        ],
        w_frac in 0u64..=4,
        monitor_idx in 0usize..3,
        seed_instrs in 6_000u64..10_000,
    ) {
        let monitor = ["AddrCheck", "MemLeak", "TaintCheck"][monitor_idx];
        let bench_name = if monitor == "TaintCheck" { "mcf-taint" } else { "gcc" };
        let w = (k * w_frac / 4).max(1);

        let mut reference = session(
            bench_name,
            monitor,
            Engine::Cycle,
            &SystemConfig::fade_single_core(),
        );
        reference.run_exact(seed_instrs).unwrap();
        reference.drain().unwrap();

        let got = run_batched(bench_name, monitor, k, w, seed_instrs);
        prop_assert_eq!(&got, &visible(&reference));
    }

    /// `run(a); run(b)` on a batched session consumes the same trace
    /// and produces the same monitor-visible results as `run(a+b)` —
    /// the batched engine resumes bit-exactly at call boundaries,
    /// wherever they fall relative to the sampling schedule.
    #[test]
    fn run_batched_composes_across_call_boundaries(
        a in 1_000u64..8_000,
        b_instrs in 1_000u64..8_000,
        k in prop_oneof![Just(1u64), 128u64..2048, Just(1u64 << 40)],
        monitor_idx in 0usize..2,
    ) {
        let monitor = ["AddrCheck", "MemLeak"][monitor_idx];
        let cfg = SystemConfig::fade_single_core()
            .with_sample_period(k)
            .with_sample_window((k / 4).max(1));

        let mut split = session("astar", monitor, Engine::batched(), &cfg);
        split.run(a).unwrap();
        split.run(b_instrs).unwrap();
        split.drain().unwrap();

        let mut whole = session("astar", monitor, Engine::batched(), &cfg);
        whole.run(a + b_instrs).unwrap();
        whole.drain().unwrap();

        prop_assert_eq!(&visible(&split), &visible(&whole));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The congestion-carrying window (handler seeded at window entry,
    /// tail-recorded residual on monitor-bound windows) is pure timing:
    /// on the monitor-bound gcc/MemLeak point — where every window gets
    /// seeded — any sampling schedule still yields monitor-visible
    /// results identical to the cycle-accurate reference, even when the
    /// run is chopped into increments that land call boundaries inside
    /// seeded windows and their warmup halves.
    #[test]
    fn congestion_seeded_windows_never_change_monitor_results(
        k in 256u64..2048,
        w_frac in 1u64..=3,
        chunks in prop::collection::vec(500u64..3_000, 2..6),
    ) {
        let total: u64 = chunks.iter().sum();
        let cfg = SystemConfig::fade_single_core()
            .with_sample_period(k)
            .with_sample_window((k * w_frac / 4).max(1));

        let mut reference = session("gcc", "MemLeak", Engine::Cycle, &SystemConfig::fade_single_core());
        reference.run_exact(total).unwrap();
        reference.drain().unwrap();

        let mut sys = session("gcc", "MemLeak", Engine::batched(), &cfg);
        for c in chunks {
            sys.run(c).unwrap();
        }
        sys.drain().unwrap();
        prop_assert!(sys.batch_stats().events > 0, "batched path unused");
        prop_assert_eq!(&visible(&sys), &visible(&reference));
    }
}

/// Regression for the sampling-estimator congestion bug: a sustained
/// monitor-bound workload (gcc/MemLeak — long stretches where handler
/// work outpaces the commit stream and the queues run full) used to be
/// estimated well below its cycle-accurate count, because every
/// sampling window restarted from drained queues and measured the
/// congestion-free refill transient. With the congestion-carrying
/// window the estimate must not undershoot the exact count by more
/// than the documented tolerance — and must stay an estimate, not an
/// unbounded overshoot.
#[test]
fn long_congestion_trace_is_not_underestimated() {
    // Window shape matters: the congestion-carrying machinery needs
    // tails of >= 1024 events to sample steady-state backpressure, so
    // this runs the default 25%-sampled density at half the default
    // period (several full periods fit in a debug-sized trace).
    let cfg = SystemConfig::fade_single_core()
        .with_sample_period(8192)
        .with_sample_window(2048);

    let mut exact = session("gcc", "MemLeak", Engine::Cycle, &cfg);
    exact.run_exact(150_000).unwrap();
    exact.drain().unwrap();

    let mut batched = session("gcc", "MemLeak", Engine::batched(), &cfg);
    batched.run(150_000).unwrap();
    batched.drain().unwrap();

    assert!(batched.batch_stats().events > 0, "batched path unused");
    assert!(
        batched.carried_seed_cycles() > 0,
        "monitor-bound run must seed carried congestion into its windows"
    );
    let exact_cycles = exact.cycles() as f64;
    let estimated = batched.estimated_total_cycles() as f64;
    assert!(
        estimated >= exact_cycles * 0.95,
        "congested workload underestimated again: {estimated} vs exact {exact_cycles} \
         ({:+.2}%)",
        100.0 * (estimated - exact_cycles) / exact_cycles,
    );
    assert!(
        estimated <= exact_cycles * 1.15,
        "estimate overshot: {estimated} vs exact {exact_cycles}",
    );
}

/// The W >= K degenerate case runs fully cycle-accurately: timing is
/// exact, batch counters stay zero.
#[test]
fn window_covering_period_is_pure_cycle_mode() {
    let cfg = SystemConfig::fade_single_core()
        .with_sample_period(256)
        .with_sample_window(512);
    let mut sys = session("mcf", "AddrCheck", Engine::batched(), &cfg);
    sys.run(10_000).unwrap();
    sys.drain().unwrap();
    let mut reference = session("mcf", "AddrCheck", Engine::Cycle, &cfg);
    reference.run_exact(10_000).unwrap();
    reference.drain().unwrap();
    assert_eq!(sys.cycles(), reference.cycles(), "pure cycle mode is exact");
    assert_eq!(sys.estimated_total_cycles(), sys.cycles());
    assert_eq!(sys.batch_stats().events, 0);
}
