//! Fault-injection and graceful-degradation properties at the system
//! level: whatever a trace source throws at a [`Session`] — bit flips,
//! truncations, short reads, dying disks, plain exhaustion — the run
//! must end in an `Ok` with exact degradation accounting or in a typed
//! [`SessionRunError`], never in a panic and never with silently wrong
//! records.
//!
//! The sweep width is `FAULT_SEEDS` (default 64 here; CI runs the
//! release sweep wider). Every case is a pure function of its seed, so
//! a failure message's seed replays the exact scenario.

use std::io::Cursor;

use fade_system::{Engine, ReplayBuffer, Session, SessionRunError, SourceError, SystemConfig};
use fade_trace::faultinject::{FaultKind, FaultPlan, FaultyReader};
use fade_trace::file::decode_trace_recovering;
use fade_trace::{bench, encode_trace, BenchProfile, TraceMeta, TraceReader, TraceRecord};

const RECORD_INSTRS: u64 = 6_000;

fn sweep_seeds() -> u64 {
    std::env::var("FAULT_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

fn cfg() -> SystemConfig {
    SystemConfig::fade_single_core()
}

/// A recorded prefix of gcc under MemLeak, as encoded `.fadet` bytes
/// plus the raw records behind them.
fn fixture() -> (BenchProfile, Vec<TraceRecord>, Vec<u8>, u64) {
    let b = bench::by_name("gcc").unwrap();
    let (records, instrs) = fade_system::record_trace_prefix(&b, "MemLeak", cfg().seed, RECORD_INSTRS);
    let bytes = encode_trace(&TraceMeta::new("gcc", cfg().seed), &records);
    (b, records, bytes, instrs)
}

/// Runs a session over the given source to source exhaustion (or typed
/// failure) and returns it alongside the run outcome.
fn run_to_end(
    b: &BenchProfile,
    source: Box<dyn fade_system::TraceSource>,
) -> (Session, Result<(), SessionRunError>) {
    let mut s = Session::builder()
        .monitor("MemLeak")
        .trace_source(b.clone(), source)
        .config(cfg())
        .build()
        .expect("build never depends on source health");
    let outcome = s.run_exact(u64::MAX / 2).and_then(|()| s.drain());
    (s, outcome)
}

/// Monitor-visible fingerprint for equality comparisons.
fn fingerprint(s: &Session) -> (u64, u64, Vec<String>) {
    (s.instrs(), s.events_seen(), s.monitor().reports())
}

/// A source that runs dry mid-run is a *clean* early stop: `Ok`, the
/// exhaustion flag raised, nothing left in flight — for both engines.
#[test]
fn source_exhaustion_is_a_clean_early_stop() {
    let (b, records, _, instrs) = fixture();
    for engine in [Engine::Cycle, Engine::batched()] {
        let mut s = Session::builder()
            .monitor("MemLeak")
            .trace_source(b.clone(), Box::new(ReplayBuffer::new(records.clone())))
            .engine(engine)
            .config(cfg())
            .build()
            .unwrap();
        // Ask for far more than the source holds.
        s.run_exact(instrs * 100).expect("exhaustion is not an error");
        s.drain().expect("drain after exhaustion");
        assert!(s.source_exhausted(), "{engine:?}: exhaustion flag");
        assert!(
            s.instrs() <= instrs,
            "{engine:?}: cannot execute more than the source holds"
        );
        assert!(s.instrs() > 0, "{engine:?}: the records that exist do run");
    }
}

/// The seeded sweep: every fault kind × seed, replayed through a full
/// monitoring session in recover mode. Zero panics; transport faults
/// are lossless; data faults degrade with the same surviving records a
/// plain recovering decode produces; dead transports fail typed.
#[test]
fn fault_sweep_is_panic_free_and_accounted() {
    let (b, records, bytes, _) = fixture();

    // Clean reference: the same records replayed from memory.
    let (clean, outcome) = run_to_end(&b, Box::new(ReplayBuffer::new(records.clone())));
    outcome.expect("clean replay");
    let clean_fp = fingerprint(&clean);

    let seeds = sweep_seeds();
    let mut recovered_runs = 0u64;
    for seed in 0..seeds {
        for kind in FaultKind::ALL {
            let what = format!("seed {seed} kind {kind:?}");
            let plan = FaultPlan::seeded(seed, kind, bytes.len() as u64);
            let faulty = FaultyReader::new(Cursor::new(bytes.clone()), plan);
            let reader = match TraceReader::new(faulty) {
                Ok(r) => r.with_recovery(),
                // A fault inside the header (or a transport dead on
                // arrival) fails typed at open — also a valid outcome.
                Err(_) => continue,
            };
            let (s, outcome) = run_to_end(&b, Box::new(reader));
            match kind {
                // Semantically lossless: same bytes, slower transport.
                FaultKind::ShortRead => {
                    outcome.unwrap_or_else(|e| panic!("{what}: lossless fault errored: {e}"));
                    assert_eq!(fingerprint(&s), clean_fp, "{what}: bit-exact");
                    assert!(
                        s.degradation().expect("recovering source").is_clean(),
                        "{what}: nothing to account"
                    );
                }
                // Data faults: the session must see exactly the records
                // a recovering decode of the damaged bytes survives.
                FaultKind::BitFlip | FaultKind::Truncate => {
                    outcome.unwrap_or_else(|e| panic!("{what}: recoverable fault errored: {e}"));
                    let damaged = plan.apply(&bytes);
                    let (_, surviving, report) =
                        decode_trace_recovering(&damaged).unwrap_or_else(|e| panic!("{what}: {e}"));
                    let (reference, ref_outcome) =
                        run_to_end(&b, Box::new(ReplayBuffer::new(surviving)));
                    ref_outcome.expect("surviving records replay cleanly");
                    assert_eq!(
                        fingerprint(&s),
                        fingerprint(&reference),
                        "{what}: degraded replay == replay of surviving records"
                    );
                    assert_eq!(
                        s.degradation(),
                        Some(&report),
                        "{what}: session surfaces the decoder's exact accounting"
                    );
                    if !report.is_clean() {
                        recovered_runs += 1;
                    }
                }
                // A dying transport is not recoverable: typed error.
                FaultKind::IoError => {
                    match outcome {
                        Err(SessionRunError::Source(SourceError::Trace(
                            fade_trace::TraceFileError::Io(_),
                        ))) => {}
                        other => panic!("{what}: expected a typed I/O source error, got {other:?}"),
                    }
                    // The error is sticky: the session stays poisoned
                    // for callers that retry.
                    let mut s = s;
                    assert!(s.run_exact(1).is_err(), "{what}: source failure latches");
                }
            }
        }
    }
    assert!(
        recovered_runs > 0,
        "sweep of {seeds} seeds never exercised recovery — fixture too small?"
    );
}

/// `SessionBuilder::recover_faults` on a damaged `.fadet` *file*: the
/// run completes and the degradation accounting reaches the
/// [`fade_system::RunReport`]; the same file without recovery fails
/// typed.
#[test]
fn recovering_file_session_reports_degradation() {
    let (_, _, bytes, instrs) = fixture();
    let plan = FaultPlan::seeded(3, FaultKind::BitFlip, bytes.len() as u64);
    let damaged = plan.apply(&bytes);
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("robustness_bitflip.fadet");
    std::fs::write(&path, &damaged).unwrap();

    // Strict replay refuses the damaged file mid-run, typed.
    let mut strict = Session::builder()
        .monitor("MemLeak")
        .source(path.as_path())
        .config(cfg())
        .build()
        .expect("the header is intact");
    let err = strict
        .run_exact(instrs)
        .and_then(|()| strict.drain())
        .expect_err("strict mode must surface the fault");
    assert!(
        matches!(err, SessionRunError::Source(SourceError::Trace(_))),
        "typed trace error, got {err:?}"
    );

    // Recovering replay completes and accounts for the loss end-to-end.
    let report = Session::builder()
        .monitor("MemLeak")
        .source(path.as_path())
        .recover_faults()
        .config(cfg())
        .build()
        .unwrap()
        .run_measured(1_000, instrs / 2)
        .expect("recovering replay completes");
    let degradation = report.degradation.expect("recovering sessions always report");
    assert_eq!(degradation.chunks_skipped, 1, "one flipped bit, one chunk");
    assert!(degradation.records_lost > 0);
    assert!(!degradation.faults.is_empty());
}

/// A byte cap too small for the workload latches a typed, sticky
/// [`SessionRunError::ShadowBudget`]; a *page* budget alone is
/// lossless and never errors.
#[test]
fn shadow_byte_cap_fails_typed_and_sticky() {
    let b = bench::by_name("gcc").unwrap();
    let mut s = Session::builder()
        .monitor("MemLeak")
        .source(&b)
        .config(cfg().with_shadow_page_budget(1).with_shadow_mem_cap(2 * 1024))
        .build()
        .unwrap();
    let err = s.run(20_000).expect_err("2 KiB cannot hold even one shadow frame");
    let SessionRunError::ShadowBudget(exceeded) = &err else {
        panic!("expected ShadowBudget, got {err:?}");
    };
    assert!(exceeded.used_bytes > exceeded.cap_bytes);
    // Sticky: the session is poisoned with the same error.
    assert_eq!(s.run(1), Err(err.clone()));
}
