//! Property and boundary tests for the vectorized SoA filtering core
//! (`fade::vector`).
//!
//! Three contracts, per the lane-level test plan:
//!
//! 1. **Verdict equivalence** — for arbitrary event blocks and
//!    arbitrary accelerator/metadata contents, the vectorized verdict
//!    mask ([`Fade::probe_block`]) equals per-event scalar verdicts
//!    recomputed through the public operand-fetch + `evaluate_shot`
//!    path, and probing moves no counters (M-TLB, MD cache, stats).
//! 2. **Execution equivalence** — `run_batch_vectorized_with` at lane
//!    widths 1, 8 and 16 is bit-exact with `run_batch_with` over
//!    randomized mixed streams (stats, dispatch streams, cache/TLB
//!    counters — which pins LRU/MRU side effects — and metadata
//!    state), in both filter modes.
//! 3. **Framing boundaries** — batch sizes 1..=257, misaligned tails,
//!    all-hit / all-miss / alternating-page blocks: no panics,
//!    identical results, and the `BatchStats` fast-path counters count
//!    vector-retired events exactly like scalar retirement.

use fade::filter_logic::evaluate_shot;
use fade::{Fade, FadeConfig, FilterMode, OperandMeta, OperandSel, UnfilteredEvent};
use fade_isa::{
    instr_event_for, layout, AppEvent, AppInstr, EventBlock, HighLevelEvent, InstrClass,
    InstrEvent, MemRef, Reg, StackUpdateEvent, StackUpdateKind, VirtAddr,
};
use fade_monitors::monitor_by_name;
use fade_shadow::MetadataState;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Shared generators (same op pool as tests/properties.rs).
// ---------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
enum BatchOp {
    Load { slot: u8, dest: u8 },
    Store { slot: u8, src: u8 },
    Alu { s1: u8, s2: u8, d: u8 },
    Mov { s1: u8, d: u8 },
    Malloc { block: u8 },
    Free { block: u8 },
    Call,
    Ret,
    Switch { tid: u8 },
}

fn batch_op() -> impl Strategy<Value = BatchOp> {
    prop_oneof![
        (0u8..16, 0u8..6).prop_map(|(slot, dest)| BatchOp::Load { slot, dest }),
        (0u8..16, 0u8..6).prop_map(|(slot, src)| BatchOp::Store { slot, src }),
        (0u8..6, 0u8..6, 0u8..6).prop_map(|(s1, s2, d)| BatchOp::Alu { s1, s2, d }),
        (0u8..6, 0u8..6).prop_map(|(s1, d)| BatchOp::Mov { s1, d }),
        (0u8..4).prop_map(|block| BatchOp::Malloc { block }),
        (0u8..4).prop_map(|block| BatchOp::Free { block }),
        Just(BatchOp::Call),
        Just(BatchOp::Ret),
        (0u8..4).prop_map(|tid| BatchOp::Switch { tid }),
    ]
}

/// Address pool spanning several pages so the M-TLB and MD cache both
/// hit and miss.
fn slot_addr(slot: u8) -> VirtAddr {
    match slot {
        0..=7 => VirtAddr::new(layout::HEAP_BASE + slot as u32 * 4),
        8..=11 => VirtAddr::new(layout::HEAP_BASE + 4096 + (slot as u32 - 8) * 4),
        _ => VirtAddr::new(layout::GLOBALS_BASE + (slot as u32 - 12) * 4),
    }
}

fn reg(i: u8) -> Reg {
    Reg::new(2 + i)
}

fn load_at(addr: VirtAddr, dest: u8) -> AppInstr {
    AppInstr::new(VirtAddr::new(0x400), InstrClass::Load)
        .with_dest(reg(dest))
        .with_mem(MemRef::word(addr))
}

/// Lowers ops to events, keeping the call stack balanced (trimmed copy
/// of the scalar property suite's lowering).
fn lower_ops(ops: &[BatchOp], fade: &Fade) -> Vec<AppEvent> {
    let mut sp = layout::STACK_TOP - 8192;
    let mut frames: Vec<(VirtAddr, u32)> = Vec::new();
    let mut tid = 0u8;
    let mut events = Vec::new();
    let push_instr = |i: AppInstr, events: &mut Vec<AppEvent>| {
        let ev = instr_event_for(&i);
        if fade.program().table().entry(ev.id).is_some() {
            events.push(AppEvent::Instr(ev));
        }
    };
    for &op in ops {
        match op {
            BatchOp::Load { slot, dest } => {
                push_instr(load_at(slot_addr(slot), dest).with_tid(tid), &mut events)
            }
            BatchOp::Store { slot, src } => push_instr(
                AppInstr::new(VirtAddr::new(0x404), InstrClass::Store)
                    .with_src1(reg(src))
                    .with_mem(MemRef::word(slot_addr(slot)))
                    .with_tid(tid),
                &mut events,
            ),
            BatchOp::Alu { s1, s2, d } => push_instr(
                AppInstr::new(VirtAddr::new(0x408), InstrClass::IntAlu)
                    .with_src1(reg(s1))
                    .with_src2(reg(s2))
                    .with_dest(reg(d))
                    .with_tid(tid),
                &mut events,
            ),
            BatchOp::Mov { s1, d } => push_instr(
                AppInstr::new(VirtAddr::new(0x410), InstrClass::IntMove)
                    .with_src1(reg(s1))
                    .with_dest(reg(d))
                    .with_tid(tid),
                &mut events,
            ),
            BatchOp::Malloc { block } => events.push(AppEvent::HighLevel(HighLevelEvent::Malloc {
                base: VirtAddr::new(layout::HEAP_BASE + block as u32 * 64),
                len: 64,
                ctx: 7 + block as u32,
            })),
            BatchOp::Free { block } => events.push(AppEvent::HighLevel(HighLevelEvent::Free {
                base: VirtAddr::new(layout::HEAP_BASE + block as u32 * 64),
                len: 64,
            })),
            BatchOp::Call => {
                sp -= 64;
                let ev = StackUpdateEvent {
                    base: VirtAddr::new(sp),
                    len: 64,
                    kind: StackUpdateKind::Call,
                    tid,
                };
                frames.push((ev.base, ev.len));
                events.push(AppEvent::StackUpdate(ev));
            }
            BatchOp::Ret => {
                if let Some((base, len)) = frames.pop() {
                    sp += len;
                    events.push(AppEvent::StackUpdate(StackUpdateEvent {
                        base,
                        len,
                        kind: StackUpdateKind::Return,
                        tid,
                    }));
                }
            }
            BatchOp::Switch { tid: t } => {
                tid = t;
                events.push(AppEvent::HighLevel(HighLevelEvent::ThreadSwitch { tid: t }));
            }
        }
    }
    events
}

/// A fresh accelerator + metadata state for one monitor.
fn instance(monitor: &str, mode: FilterMode) -> (Fade, MetadataState) {
    let mon = monitor_by_name(monitor).unwrap();
    let program = mon.program();
    let mut st = MetadataState::new(program.md_map());
    mon.init_state(&mut st);
    (Fade::new(FadeConfig::paper(mode), program), st)
}

/// Compares the metadata the test can observe: every register and the
/// whole address pool (plus stack frames the ops may have touched).
fn assert_states_match(a: &MetadataState, b: &MetadataState) -> Result<(), TestCaseError> {
    for r in Reg::all() {
        prop_assert_eq!(a.reg_meta(r), b.reg_meta(r), "reg {:?}", r);
    }
    for slot in 0..16u8 {
        let addr = slot_addr(slot);
        prop_assert_eq!(a.mem_meta(addr), b.mem_meta(addr), "mem {:?}", addr);
    }
    for i in 0..64u32 {
        let addr = VirtAddr::new(layout::STACK_TOP - 8192 - 64 * 8 + i * 4);
        prop_assert_eq!(a.mem_meta(addr), b.mem_meta(addr), "stack {:?}", addr);
    }
    Ok(())
}

// ---------------------------------------------------------------------
// 1. Verdict-mask equivalence (probe vs scalar re-derivation).
// ---------------------------------------------------------------------

/// Independent scalar oracle for one event's filter verdict, built
/// from public APIs only: operand fetch per the event-table rules,
/// then `evaluate_shot`.
fn scalar_verdict(fade: &Fade, ev: &InstrEvent, st: &MetadataState) -> Option<bool> {
    let program = fade.program();
    let entry = program.table().entry(ev.id)?;
    let fetch = |sel: OperandSel| -> u64 {
        let rule = entry.operand(sel);
        if !rule.valid {
            return 0;
        }
        let raw = if rule.mem {
            st.mem
                .read_bytes(program.md_map().md_addr(ev.app_addr), rule.md_bytes as usize)
        } else {
            let r = match sel {
                OperandSel::S1 => ev.src1,
                OperandSel::S2 => ev.src2,
                OperandSel::D => ev.dest,
            };
            st.regs.read(r) as u64
        };
        raw & rule.mask
    };
    let ops = OperandMeta {
        s1: fetch(OperandSel::S1),
        s2: fetch(OperandSel::S2),
        d: fetch(OperandSel::D),
    };
    Some(evaluate_shot(entry, &ops, program.invariants()).condition_holds)
}

fn check_probe_matches_scalar(
    monitor: &str,
    ops: &[BatchOp],
    width: usize,
    warmup: usize,
) -> Result<(), TestCaseError> {
    let (mut fade, mut st) = instance(monitor, FilterMode::NonBlocking);
    let events = lower_ops(ops, &fade);
    // Arbitrary M-TLB/MD/metadata contents: run a prefix through the
    // scalar engine, then probe blocks built from the remainder.
    let warmup = warmup.min(events.len());
    fade.run_batch(&events[..warmup], &mut st);

    let stats0 = fade.stats();
    let tlb0 = fade.tlb_counts();
    let md0 = fade.md_cache_stats();

    let mut block = EventBlock::new(width);
    for ev in events[warmup..].iter().filter_map(AppEvent::as_instr) {
        if !block.push(ev) {
            break;
        }
    }
    if block.is_empty() {
        return Ok(());
    }
    let probe = fade.probe_block(&block, &st);
    // Monitors with multi-shot chains or partial tags (e.g. AtomCheck)
    // legitimately probe ineligible — those blocks take the scalar
    // path; the verdict contract applies to eligible blocks.
    if !probe.eligible {
        prop_assert_eq!(probe.warm_mask, 0);
        prop_assert_eq!(probe.verdict_mask, 0);
        return Ok(());
    }
    for i in 0..block.len() {
        let ev = block.lane(i);
        let expect = scalar_verdict(&fade, &ev, &st).expect("eligible lanes have entries");
        prop_assert_eq!(
            probe.verdict_mask >> i & 1 == 1,
            expect,
            "{}: lane {} (id {:?}) verdict",
            monitor,
            i,
            ev.id
        );
    }
    // The warm mask only claims occupied lanes.
    prop_assert_eq!(probe.warm_mask & !block.full_mask(), 0);
    // Probing is side-effect-free on every counter surface.
    prop_assert_eq!(fade.stats(), stats0, "{}: probe moved FadeStats", monitor);
    prop_assert_eq!(fade.tlb_counts(), tlb0, "{}: probe moved the M-TLB", monitor);
    prop_assert_eq!(fade.md_cache_stats(), md0, "{}: probe moved the MD cache", monitor);
    Ok(())
}

// ---------------------------------------------------------------------
// 2. Execution equivalence at every lane width.
// ---------------------------------------------------------------------

fn check_vector_equivalence(
    monitor: &str,
    ops: &[BatchOp],
    width: usize,
    mode: FilterMode,
) -> Result<(), TestCaseError> {
    let (mut f_s, mut st_s) = instance(monitor, mode);
    let (mut f_v, mut st_v) = instance(monitor, mode);
    let events = lower_ops(ops, &f_s);

    let mut disp_s = Vec::new();
    let bs_s = f_s.run_batch_with(&events, &mut st_s, |uf, _| disp_s.push(uf));
    let mut disp_v: Vec<UnfilteredEvent> = Vec::new();
    let bs_v = f_v.run_batch_vectorized_with(&events, &mut st_v, width, |uf, _| disp_v.push(uf));

    prop_assert_eq!(bs_s, bs_v, "{}: BatchStats (w={})", monitor, width);
    prop_assert_eq!(&disp_s, &disp_v, "{}: dispatch streams (w={})", monitor, width);
    prop_assert_eq!(f_s.stats(), f_v.stats(), "{}: FadeStats (w={})", monitor, width);
    prop_assert_eq!(
        f_s.md_cache_stats(),
        f_v.md_cache_stats(),
        "{}: MD cache stats (w={})",
        monitor,
        width
    );
    prop_assert_eq!(
        f_s.tlb_counts(),
        f_v.tlb_counts(),
        "{}: M-TLB counts (w={})",
        monitor,
        width
    );
    prop_assert_eq!(f_v.fsq_len(), 0, "{}: FSQ must drain", monitor);
    assert_states_match(&st_s, &st_v)?;

    // LRU/MRU side-effect equivalence, observed behaviorally: replay
    // the same probe stream through both accelerators; any divergence
    // in LRU order shows up as differing hit counters.
    let probes: Vec<AppEvent> = (0..16u8)
        .map(|s| AppEvent::Instr(instr_event_for(&load_at(slot_addr(s), 2))))
        .collect();
    f_s.run_batch(&probes, &mut st_s);
    f_v.run_batch(&probes, &mut st_v);
    prop_assert_eq!(
        f_s.tlb_counts(),
        f_v.tlb_counts(),
        "{}: M-TLB LRU order diverged (w={})",
        monitor,
        width
    );
    prop_assert_eq!(
        f_s.md_cache_stats(),
        f_v.md_cache_stats(),
        "{}: MD-cache LRU order diverged (w={})",
        monitor,
        width
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Vectorized verdict masks equal per-event scalar verdicts over
    /// arbitrary blocks, widths and accelerator contents, and probing
    /// is side-effect-free.
    #[test]
    fn probe_verdicts_match_scalar(
        ops in prop::collection::vec(batch_op(), 1..120),
        monitor_idx in 0usize..5,
        width_idx in 0usize..3,
        warmup in 0usize..64,
    ) {
        let monitor = ["addrcheck", "memcheck", "memleak", "taintcheck", "atomcheck"][monitor_idx];
        check_probe_matches_scalar(monitor, &ops, [1, 8, 16][width_idx], warmup)?;
    }

    /// `run_batch_vectorized` is bit-exact with `run_batch` at widths
    /// 1, 8 and 16 over randomized mixed streams, for every monitor —
    /// including LRU/MRU side effects.
    #[test]
    fn vectorized_execution_matches_scalar(
        ops in prop::collection::vec(batch_op(), 0..160),
        monitor_idx in 0usize..5,
        width_idx in 0usize..3,
    ) {
        let monitor = ["addrcheck", "memcheck", "memleak", "taintcheck", "atomcheck"][monitor_idx];
        check_vector_equivalence(monitor, &ops, [1, 8, 16][width_idx], FilterMode::NonBlocking)?;
    }

    /// The equivalence also holds in blocking mode, where a dispatch
    /// stalls the pipeline mid-block and invalidates the MRU window.
    #[test]
    fn vectorized_execution_matches_scalar_blocking(
        ops in prop::collection::vec(batch_op(), 0..100),
        monitor_idx in 0usize..5,
    ) {
        let monitor = ["addrcheck", "memcheck", "memleak", "taintcheck", "atomcheck"][monitor_idx];
        check_vector_equivalence(monitor, &ops, 16, FilterMode::Blocking)?;
    }
}

// ---------------------------------------------------------------------
// 3. Framing boundaries and fast-path accounting.
// ---------------------------------------------------------------------

/// All-filterable same-line loads: the canonical all-hit stream.
fn warm_loads(n: usize) -> Vec<AppEvent> {
    (0..n)
        .map(|_| AppEvent::Instr(instr_event_for(&load_at(VirtAddr::new(layout::HEAP_BASE + 0x40), 3))))
        .collect()
}

/// Every batch size 1..=257 (misaligned tails at every width included)
/// produces identical results on both engines — no panics, no drift.
#[test]
fn batch_sizes_1_to_257_are_identical() {
    for width in [1usize, 8, 16] {
        let (mut f_s, mut st_s) = instance("memleak", FilterMode::NonBlocking);
        let (mut f_v, mut st_v) = instance("memleak", FilterMode::NonBlocking);
        for n in 1..=257usize {
            // Vary the content with n so hits, misses and non-instr
            // events all appear at every framing.
            let mut events = warm_loads(n);
            if n % 3 == 0 {
                events[n / 2] = AppEvent::Instr(instr_event_for(&load_at(
                    VirtAddr::new(layout::HEAP_BASE + 4096 * (n as u32 % 7)),
                    4,
                )));
            }
            if n % 5 == 0 {
                events[n / 3] = AppEvent::HighLevel(HighLevelEvent::Malloc {
                    base: VirtAddr::new(layout::HEAP_BASE + 64),
                    len: 64,
                    ctx: 1,
                });
            }
            let bs_s = f_s.run_batch(&events, &mut st_s);
            let bs_v = f_v.run_batch_vectorized(&events, &mut st_v, width);
            assert_eq!(bs_s, bs_v, "n={n} w={width}: BatchStats");
            assert_eq!(f_s.stats(), f_v.stats(), "n={n} w={width}: FadeStats");
        }
        assert_eq!(f_s.tlb_counts(), f_v.tlb_counts(), "w={width}");
        assert_eq!(f_s.md_cache_stats(), f_v.md_cache_stats(), "w={width}");
    }
}

/// All-hit, all-miss and page-alternating blocks agree with scalar
/// execution — the warm-mask fast path and the per-lane fallback both
/// stay exact under pathological locality.
#[test]
fn hit_miss_alternating_blocks_are_identical() {
    let streams: [Vec<AppEvent>; 3] = [
        // All-hit: one line, forever warm after the first event.
        warm_loads(64),
        // All-miss: every event on a new page (wider than the M-TLB).
        (0..64u32)
            .map(|i| AppEvent::Instr(instr_event_for(&load_at(
                VirtAddr::new(layout::HEAP_BASE + i * 8192),
                3,
            ))))
            .collect(),
        // Alternating: two pages ping-pong (MRU window never settles).
        (0..64u32)
            .map(|i| AppEvent::Instr(instr_event_for(&load_at(
                VirtAddr::new(layout::HEAP_BASE + (i % 2) * 8192),
                3,
            ))))
            .collect(),
    ];
    for (k, events) in streams.iter().enumerate() {
        for width in [8usize, 16] {
            let (mut f_s, mut st_s) = instance("addrcheck", FilterMode::NonBlocking);
            let (mut f_v, mut st_v) = instance("addrcheck", FilterMode::NonBlocking);
            let bs_s = f_s.run_batch(events, &mut st_s);
            let bs_v = f_v.run_batch_vectorized(events, &mut st_v, width);
            assert_eq!(bs_s, bs_v, "stream {k} w={width}: BatchStats");
            assert_eq!(f_s.stats(), f_v.stats(), "stream {k} w={width}: FadeStats");
            assert_eq!(f_s.tlb_counts(), f_v.tlb_counts(), "stream {k} w={width}");
            assert_eq!(f_s.md_cache_stats(), f_v.md_cache_stats(), "stream {k} w={width}");
        }
    }
}

/// Fast-path accounting regression (PR 5 comparability): vector-retired
/// events count toward `BatchStats::fast_path` exactly like scalar
/// retirement — a warm all-filterable steady state reports fast-path
/// 1000/1000 and one busy cycle per event on both engines, so
/// `fast_path_fraction` stays comparable across engine generations.
#[test]
fn fast_path_counters_match_scalar_retirement() {
    let run = |width: Option<usize>| {
        let (mut fade, mut st) = instance("memleak", FilterMode::NonBlocking);
        let warm = warm_loads(4);
        match width {
            Some(w) => fade.run_batch_vectorized(&warm, &mut st, w),
            None => fade.run_batch(&warm, &mut st),
        };
        let busy0 = fade.stats().busy_cycles;
        let stream = warm_loads(1000);
        let bs = match width {
            Some(w) => fade.run_batch_vectorized(&stream, &mut st, w),
            None => fade.run_batch(&stream, &mut st),
        };
        (bs, fade.stats().busy_cycles - busy0)
    };
    let (bs_scalar, busy_scalar) = run(None);
    assert_eq!(bs_scalar.fast_path, 1000);
    assert_eq!(busy_scalar, 1000);
    for w in [1, 8, 16] {
        let (bs, busy) = run(Some(w));
        assert_eq!(bs, bs_scalar, "w={w}: BatchStats classification");
        assert_eq!(bs.fast_path, 1000, "w={w}: vector-retired events are fast-path");
        assert_eq!(busy, 1000, "w={w}: one busy cycle per retired event");
        assert!((bs.fast_path_fraction() - 1.0).abs() < 1e-12, "w={w}");
    }
}
