//! Behavioural tests of the full accelerator: pipeline, queues, SUU,
//! blocking vs non-blocking semantics, FSQ forwarding.

use fade::{
    EventTableEntry, Fade, FadeConfig, FilterMode, FadeProgram, HandlerPc, InvId, NbAction,
    NbUpdate, OperandRule, RuCompose, SuuConfig,
};
use fade_isa::{
    event_ids, AppEvent, EventId, HighLevelEvent, InstrEvent, Reg, StackUpdateEvent,
    StackUpdateKind, VirtAddr,
};
use fade_shadow::{MetadataMap, MetadataState};
use fade_sim::QueueDepth;

const CLEAN: u64 = 0;
const DIRTY: u8 = 1;

/// A configuration with free metadata misses, so semantic tests are not
/// dominated by cold-cache fill latency.
fn fast_config(mode: FilterMode) -> FadeConfig {
    let mut c = FadeConfig::paper(mode);
    c.tlb_miss_penalty = 0;
    c.blocking_resume_latency = 0;
    c.mem_lat = fade_sim::MemLatency {
        l1: 0,
        l2: 0,
        dram: 0,
    };
    c
}

/// A minimal taint-style monitor program:
/// * LOAD: clean check (s1 memory, d register against invariant 0 =
///   clean), non-blocking rule "propagate s1 to d".
/// * STORE: redundant update (s1 register vs d memory), non-blocking
///   rule "propagate s1 to d" with a memory destination.
fn test_program() -> FadeProgram {
    let mut p = FadeProgram::new(MetadataMap::per_word());
    p.set_invariant(InvId::new(0), CLEAN);
    p.set_invariant(InvId::new(1), 2); // SUU call value
    p.set_invariant(InvId::new(2), 0); // SUU return value
    p.set_entry(
        event_ids::LOAD,
        EventTableEntry::clean_check([
            Some(OperandRule::mem_operand(1, 0xff, InvId::new(0))),
            None,
            Some(OperandRule::reg_operand(0xff, InvId::new(0))),
        ])
        .with_handler(HandlerPc::new(0x100))
        .with_nb(NbUpdate::unconditional(NbAction::PropagateS1)),
    );
    p.set_entry(
        event_ids::STORE,
        EventTableEntry::redundant_update(
            [
                Some(OperandRule::reg_plain(0xff)),
                None,
                Some(OperandRule::mem_plain(1, 0xff)),
            ],
            RuCompose::Direct,
        )
        .with_handler(HandlerPc::new(0x200))
        .with_nb(NbUpdate::unconditional(NbAction::PropagateS1)),
    );
    p.set_suu(SuuConfig {
        call_inv: InvId::new(1),
        ret_inv: InvId::new(2),
    });
    p
}

fn load_event(addr: u32, dest: u8) -> AppEvent {
    let mut e = InstrEvent::new(event_ids::LOAD, VirtAddr::new(0x40));
    e.app_addr = VirtAddr::new(addr);
    e.dest = Reg::new(dest);
    e.mem_size = 4;
    AppEvent::Instr(e)
}

fn store_event(addr: u32, src: u8) -> AppEvent {
    let mut e = InstrEvent::new(event_ids::STORE, VirtAddr::new(0x44));
    e.app_addr = VirtAddr::new(addr);
    e.src1 = Reg::new(src);
    e.mem_size = 4;
    AppEvent::Instr(e)
}

fn run_until_quiet(fade: &mut Fade, st: &mut MetadataState, max: u32) {
    for _ in 0..max {
        fade.tick(st);
    }
}

#[test]
fn clean_load_is_filtered() {
    let mut fade = Fade::new(fast_config(FilterMode::NonBlocking), test_program());
    let mut st = MetadataState::new(MetadataMap::per_word());
    fade.enqueue(load_event(0x1000, 3)).unwrap();
    run_until_quiet(&mut fade, &mut st, 200);
    assert_eq!(fade.stats().filtered, 1);
    assert_eq!(fade.stats().unfiltered_instr, 0);
    assert!(fade.pop_unfiltered().is_none());
    assert_eq!(fade.stats().filtering_ratio(), 1.0);
}

#[test]
fn dirty_load_is_dispatched_with_nb_update() {
    let mut fade = Fade::new(fast_config(FilterMode::NonBlocking), test_program());
    let mut st = MetadataState::new(MetadataMap::per_word());
    st.set_mem_meta(VirtAddr::new(0x1000), DIRTY);
    fade.enqueue(load_event(0x1000, 3)).unwrap();
    run_until_quiet(&mut fade, &mut st, 200);
    assert_eq!(fade.stats().unfiltered_instr, 1);
    let uf = fade.pop_unfiltered().expect("event must be dispatched");
    assert_eq!(uf.handler, HandlerPc::new(0x100));
    assert!(!uf.partial_hit);
    // Non-blocking update propagated the dirty bit to the register.
    assert_eq!(st.reg_meta(Reg::new(3)), DIRTY);
    fade.handler_completed(uf.token);
    assert_eq!(fade.outstanding_handlers(), 0);
}

#[test]
fn store_redundant_update_filters_when_values_match() {
    let mut fade = Fade::new(fast_config(FilterMode::NonBlocking), test_program());
    let mut st = MetadataState::new(MetadataMap::per_word());
    // Clean register stored over clean memory: redundant.
    fade.enqueue(store_event(0x2000, 5)).unwrap();
    run_until_quiet(&mut fade, &mut st, 200);
    assert_eq!(fade.stats().filtered, 1);
    // Dirty register stored over clean memory: not redundant.
    st.set_reg_meta(Reg::new(5), DIRTY);
    fade.enqueue(store_event(0x2000, 5)).unwrap();
    run_until_quiet(&mut fade, &mut st, 200);
    assert_eq!(fade.stats().unfiltered_instr, 1);
    // The NB update wrote the memory metadata through the FSQ.
    assert_eq!(st.mem_meta(VirtAddr::new(0x2000)), DIRTY);
    assert_eq!(fade.fsq_len(), 1);
    // Dependent load of the same word now sees the dirty value (FSQ
    // forwarding) and is dispatched, not filtered.
    fade.enqueue(load_event(0x2000, 6)).unwrap();
    run_until_quiet(&mut fade, &mut st, 200);
    assert_eq!(fade.stats().unfiltered_instr, 2);
    // Handler completion retires the FSQ entries.
    let a = fade.pop_unfiltered().unwrap();
    let b = fade.pop_unfiltered().unwrap();
    fade.handler_completed(a.token);
    fade.handler_completed(b.token);
    assert_eq!(fade.fsq_len(), 0);
}

#[test]
fn blocking_mode_stalls_until_handler_completes() {
    let mut fade = Fade::new(fast_config(FilterMode::Blocking), test_program());
    let mut st = MetadataState::new(MetadataMap::per_word());
    st.set_mem_meta(VirtAddr::new(0x1000), DIRTY);
    fade.enqueue(load_event(0x1000, 3)).unwrap();
    fade.enqueue(load_event(0x3000, 4)).unwrap(); // clean, filterable
    run_until_quiet(&mut fade, &mut st, 50);
    // The second (filterable) event is stuck behind the blocked one.
    assert_eq!(fade.stats().filtered, 0);
    assert!(fade.stats().blocking_stall_cycles > 0);
    let uf = fade.pop_unfiltered().unwrap();
    fade.handler_completed(uf.token);
    run_until_quiet(&mut fade, &mut st, 50);
    assert_eq!(fade.stats().filtered, 1);
}

#[test]
fn non_blocking_mode_filters_past_unfiltered_events() {
    let mut fade = Fade::new(fast_config(FilterMode::NonBlocking), test_program());
    let mut st = MetadataState::new(MetadataMap::per_word());
    st.set_mem_meta(VirtAddr::new(0x1000), DIRTY);
    fade.enqueue(load_event(0x1000, 3)).unwrap();
    fade.enqueue(load_event(0x3000, 4)).unwrap();
    run_until_quiet(&mut fade, &mut st, 50);
    // No handler completion, yet the clean load got filtered.
    assert_eq!(fade.stats().filtered, 1);
    assert_eq!(fade.stats().unfiltered_instr, 1);
    assert_eq!(fade.stats().blocking_stall_cycles, 0);
}

#[test]
fn ufq_backpressure_stalls_pipeline() {
    let mut config = fast_config(FilterMode::NonBlocking);
    config.unfiltered_queue = QueueDepth::Bounded(1);
    let mut fade = Fade::new(config, test_program());
    let mut st = MetadataState::new(MetadataMap::per_word());
    st.set_mem_meta(VirtAddr::new(0x1000), DIRTY);
    st.set_mem_meta(VirtAddr::new(0x1004), DIRTY);
    fade.enqueue(load_event(0x1000, 3)).unwrap();
    fade.enqueue(load_event(0x1004, 4)).unwrap();
    run_until_quiet(&mut fade, &mut st, 50);
    assert_eq!(fade.unfiltered_queue_len(), 1);
    assert!(fade.stats().ufq_full_stall_cycles > 0);
    // Popping (and completing) the first unblocks the second.
    let uf = fade.pop_unfiltered().unwrap();
    fade.handler_completed(uf.token);
    run_until_quiet(&mut fade, &mut st, 50);
    assert_eq!(fade.stats().unfiltered_instr, 2);
}

#[test]
fn stack_update_waits_for_drain_then_runs_suu() {
    let mut fade = Fade::new(fast_config(FilterMode::NonBlocking), test_program());
    let mut st = MetadataState::new(MetadataMap::per_word());
    st.set_mem_meta(VirtAddr::new(0x1000), DIRTY);
    fade.enqueue(load_event(0x1000, 3)).unwrap();
    fade.enqueue(AppEvent::StackUpdate(StackUpdateEvent {
        base: VirtAddr::new(0x8000),
        len: 256,
        kind: StackUpdateKind::Call,
        tid: 0,
    }))
    .unwrap();
    run_until_quiet(&mut fade, &mut st, 30);
    // The unfiltered load is outstanding: the stack update must wait.
    assert!(fade.stats().drain_stall_cycles > 0);
    assert_eq!(st.mem_meta(VirtAddr::new(0x8000)), 0, "frame not yet set");
    let uf = fade.pop_unfiltered().unwrap();
    fade.handler_completed(uf.token);
    run_until_quiet(&mut fade, &mut st, 30);
    assert_eq!(fade.stats().stack_updates, 1);
    assert!(fade.stats().suu_busy_cycles > 0);
    assert_eq!(st.mem_meta(VirtAddr::new(0x8000)), 2, "call value written");
    assert_eq!(st.mem_meta(VirtAddr::new(0x80fc)), 2);
    assert_eq!(st.mem_meta(VirtAddr::new(0x8100)), 0);
}

#[test]
fn partial_filtering_selects_short_handler() {
    let mut p = test_program();
    p.set_entry(
        event_ids::LOAD,
        EventTableEntry::clean_check([
            Some(OperandRule::mem_operand(1, 0xff, InvId::new(0))),
            None,
            None,
        ])
        .with_handler(HandlerPc::new(0x100))
        .with_partial(HandlerPc::new(0x110)),
    );
    let mut fade = Fade::new(fast_config(FilterMode::NonBlocking), p);
    let mut st = MetadataState::new(MetadataMap::per_word());
    // Check passes -> partial hit with the short handler.
    fade.enqueue(load_event(0x1000, 3)).unwrap();
    // Check fails -> full handler.
    st.set_mem_meta(VirtAddr::new(0x2000), DIRTY);
    fade.enqueue(load_event(0x2000, 3)).unwrap();
    run_until_quiet(&mut fade, &mut st, 100);
    let first = fade.pop_unfiltered().unwrap();
    assert!(first.partial_hit);
    assert_eq!(first.handler, HandlerPc::new(0x110));
    let second = fade.pop_unfiltered().unwrap();
    assert!(!second.partial_hit);
    assert_eq!(second.handler, HandlerPc::new(0x100));
    assert_eq!(fade.stats().partial_hits, 1);
    assert_eq!(fade.stats().unfiltered_instr, 1);
    // Partial hits count as filtered handlers (Table 2 semantics).
    assert!((fade.stats().filtering_ratio() - 0.5).abs() < 1e-9);
}

#[test]
fn high_level_events_are_reported_in_tick() {
    let mut fade = Fade::new(fast_config(FilterMode::NonBlocking), test_program());
    let mut st = MetadataState::new(MetadataMap::per_word());
    let malloc = HighLevelEvent::Malloc {
        base: VirtAddr::new(0x9000),
        len: 64,
        ctx: 7,
    };
    fade.enqueue(AppEvent::HighLevel(malloc)).unwrap();
    let mut seen = None;
    for _ in 0..10 {
        let t = fade.tick(&mut st);
        if t.dispatched_high_level().is_some() {
            seen = t.dispatched_high_level();
            break;
        }
    }
    assert_eq!(seen, Some(malloc));
    assert_eq!(fade.stats().high_level, 1);
    let uf = fade.pop_unfiltered().unwrap();
    assert_eq!(uf.event, AppEvent::HighLevel(malloc));
}

#[test]
fn multi_shot_chain_requires_all_checks() {
    let mut p = FadeProgram::new(MetadataMap::per_word());
    p.set_invariant(InvId::new(0), CLEAN);
    p.set_invariant(InvId::new(1), CLEAN);
    // Shot 1 checks the memory operand, shot 2 (chained) checks dest.
    p.set_entry(
        event_ids::LOAD,
        EventTableEntry::clean_check([
            Some(OperandRule::mem_operand(1, 0xff, InvId::new(0))),
            None,
            None,
        ])
        .with_handler(HandlerPc::new(0x100))
        .with_next(EventId::new(64)),
    );
    p.set_entry(
        EventId::new(64),
        EventTableEntry::clean_check([
            None,
            None,
            Some(OperandRule::reg_operand(0xff, InvId::new(1))),
        ])
        .with_ms(),
    );
    let mut fade = Fade::new(fast_config(FilterMode::NonBlocking), p);
    let mut st = MetadataState::new(MetadataMap::per_word());
    // Both clean: filtered, two shots.
    fade.enqueue(load_event(0x1000, 3)).unwrap();
    run_until_quiet(&mut fade, &mut st, 50);
    assert_eq!(fade.stats().filtered, 1);
    assert_eq!(fade.stats().shots, 2);
    // Dirty register: second shot fails, event dispatched.
    st.set_reg_meta(Reg::new(3), DIRTY);
    fade.enqueue(load_event(0x1000, 3)).unwrap();
    run_until_quiet(&mut fade, &mut st, 50);
    assert_eq!(fade.stats().unfiltered_instr, 1);
    assert_eq!(fade.stats().shots, 4);
}

#[test]
fn event_queue_backpressure_reports_rejection() {
    let mut config = fast_config(FilterMode::NonBlocking);
    config.event_queue = QueueDepth::Bounded(2);
    let mut fade = Fade::new(config, test_program());
    fade.enqueue(load_event(0, 1)).unwrap();
    fade.enqueue(load_event(4, 1)).unwrap();
    let rejected = fade.enqueue(load_event(8, 1));
    assert!(rejected.is_err());
    assert_eq!(fade.event_queue_free(), 0);
}

#[test]
fn md_cache_and_tlb_misses_cost_cycles() {
    let mut fade = Fade::new(FadeConfig::default(), test_program());
    let mut st = MetadataState::new(MetadataMap::per_word());
    // Touch many distinct pages: every access is a TLB + cache miss.
    for i in 0..32u32 {
        fade.enqueue(load_event(i * (1 << 20), 3)).unwrap();
        run_until_quiet(&mut fade, &mut st, 400);
    }
    assert!(fade.stats().tlb_miss_stall_cycles > 0);
    assert!(fade.stats().md_miss_stall_cycles > 0);
    let (hits, misses) = fade.tlb_counts();
    assert!(misses >= 16, "tlb misses {misses}, hits {hits}");
    assert_eq!(fade.stats().filtered, 32);
    // A hot access costs no further misses.
    let before = fade.stats().md_miss_stall_cycles;
    fade.enqueue(load_event(31 * (1 << 20), 3)).unwrap();
    run_until_quiet(&mut fade, &mut st, 50);
    assert_eq!(fade.stats().md_miss_stall_cycles, before);
}

#[test]
fn thread_switch_reprogramming_changes_invariants() {
    let mut fade = Fade::new(fast_config(FilterMode::NonBlocking), test_program());
    let mut st = MetadataState::new(MetadataMap::per_word());
    // Make "clean" = 5: previously-clean loads now fail the check.
    fade.write_invariant(InvId::new(0), 5);
    fade.enqueue(load_event(0x1000, 3)).unwrap();
    run_until_quiet(&mut fade, &mut st, 50);
    assert_eq!(fade.stats().unfiltered_instr, 1);
}

#[test]
fn batch_stats_fraction_is_zero_not_nan_on_empty_runs() {
    // A run that drained no events must report a 0.0 fast-path
    // fraction, not NaN from 0/0 — callers serialize this number into
    // BENCH_pipeline.json unguarded.
    let empty = fade::BatchStats::default();
    assert_eq!(empty.events, 0);
    let f = empty.fast_path_fraction();
    assert_eq!(f, 0.0);
    assert!(!f.is_nan());

    // And a real zero-event batch call reports the same.
    let mut fade = Fade::new(FadeConfig::default(), test_program());
    let mut st = MetadataState::new(MetadataMap::per_word());
    let bs = fade.run_batch(&[], &mut st);
    assert_eq!(bs.events, 0);
    assert_eq!(bs.fast_path_fraction(), 0.0);

    // Merging an empty batch into real counters keeps the fraction
    // well-defined and unchanged.
    let mut total = fade::BatchStats {
        events: 10,
        fast_path: 7,
        fallback: 3,
        dispatched: 1,
        ..Default::default()
    };
    total.merge(&bs);
    assert!((total.fast_path_fraction() - 0.7).abs() < 1e-12);
}
