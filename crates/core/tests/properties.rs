//! Property tests for the accelerator's storage structures, the
//! non-blocking update algebra, and the batched fast path's equivalence
//! with per-event cycle-accurate execution.

use std::collections::VecDeque;

use fade::{
    Fade, FadeConfig, FilterMode, Fsq, InvId, InvRf, NbAction, NbCond, NbCondOperand, NbUpdate,
    OperandMeta, TagCache, TagCacheConfig, UnfilteredEvent,
};
use fade_isa::{
    instr_event_for, layout, AppEvent, AppInstr, HighLevelEvent, InstrClass, MemRef, Reg,
    StackUpdateEvent, StackUpdateKind, VirtAddr,
};
use fade_monitors::monitor_by_name;
use fade_shadow::MetadataState;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Batched vs. per-event equivalence.
// ---------------------------------------------------------------------

/// Abstract operations lowered into application events.
#[derive(Clone, Copy, Debug)]
enum BatchOp {
    Load { slot: u8, dest: u8 },
    Store { slot: u8, src: u8 },
    Alu { s1: u8, s2: u8, d: u8 },
    Mov { s1: u8, d: u8 },
    Malloc { block: u8 },
    Free { block: u8 },
    Call,
    Ret,
    Switch { tid: u8 },
}

fn batch_op() -> impl Strategy<Value = BatchOp> {
    prop_oneof![
        (0u8..16, 0u8..6).prop_map(|(slot, dest)| BatchOp::Load { slot, dest }),
        (0u8..16, 0u8..6).prop_map(|(slot, src)| BatchOp::Store { slot, src }),
        (0u8..6, 0u8..6, 0u8..6).prop_map(|(s1, s2, d)| BatchOp::Alu { s1, s2, d }),
        (0u8..6, 0u8..6).prop_map(|(s1, d)| BatchOp::Mov { s1, d }),
        (0u8..4).prop_map(|block| BatchOp::Malloc { block }),
        (0u8..4).prop_map(|block| BatchOp::Free { block }),
        Just(BatchOp::Call),
        Just(BatchOp::Ret),
        (0u8..4).prop_map(|tid| BatchOp::Switch { tid }),
    ]
}

/// Address pool spanning several pages (so the M-TLB and MD cache both
/// hit and miss): 8 heap slots on one page, 4 on the next, 4 globals.
fn slot_addr(slot: u8) -> VirtAddr {
    match slot {
        0..=7 => VirtAddr::new(layout::HEAP_BASE + slot as u32 * 4),
        8..=11 => VirtAddr::new(layout::HEAP_BASE + 4096 + (slot as u32 - 8) * 4),
        _ => VirtAddr::new(layout::GLOBALS_BASE + (slot as u32 - 12) * 4),
    }
}

fn reg(i: u8) -> Reg {
    Reg::new(2 + i)
}

/// Lowers ops to events, keeping the call stack balanced. Only events
/// the loaded program can decode (or that bypass the event table) are
/// produced.
fn lower_ops(ops: &[BatchOp], fade: &Fade) -> Vec<AppEvent> {
    let mut sp = layout::STACK_TOP - 8192;
    let mut frames: Vec<(VirtAddr, u32)> = Vec::new();
    let mut tid = 0u8;
    let mut events = Vec::new();
    let push_instr = |i: AppInstr, events: &mut Vec<AppEvent>| {
        let ev = instr_event_for(&i);
        if fade.program().table().entry(ev.id).is_some() {
            events.push(AppEvent::Instr(ev));
        }
    };
    for &op in ops {
        match op {
            BatchOp::Load { slot, dest } => push_instr(
                AppInstr::new(VirtAddr::new(0x400), InstrClass::Load)
                    .with_dest(reg(dest))
                    .with_mem(MemRef::word(slot_addr(slot)))
                    .with_tid(tid),
                &mut events,
            ),
            BatchOp::Store { slot, src } => push_instr(
                AppInstr::new(VirtAddr::new(0x404), InstrClass::Store)
                    .with_src1(reg(src))
                    .with_mem(MemRef::word(slot_addr(slot)))
                    .with_tid(tid),
                &mut events,
            ),
            BatchOp::Alu { s1, s2, d } => push_instr(
                AppInstr::new(VirtAddr::new(0x408), InstrClass::IntAlu)
                    .with_src1(reg(s1))
                    .with_src2(reg(s2))
                    .with_dest(reg(d))
                    .with_tid(tid),
                &mut events,
            ),
            BatchOp::Mov { s1, d } => push_instr(
                AppInstr::new(VirtAddr::new(0x410), InstrClass::IntMove)
                    .with_src1(reg(s1))
                    .with_dest(reg(d))
                    .with_tid(tid),
                &mut events,
            ),
            BatchOp::Malloc { block } => events.push(AppEvent::HighLevel(HighLevelEvent::Malloc {
                base: VirtAddr::new(layout::HEAP_BASE + block as u32 * 64),
                len: 64,
                ctx: 7 + block as u32,
            })),
            BatchOp::Free { block } => events.push(AppEvent::HighLevel(HighLevelEvent::Free {
                base: VirtAddr::new(layout::HEAP_BASE + block as u32 * 64),
                len: 64,
            })),
            BatchOp::Call => {
                sp -= 64;
                let ev = StackUpdateEvent {
                    base: VirtAddr::new(sp),
                    len: 64,
                    kind: StackUpdateKind::Call,
                    tid,
                };
                frames.push((ev.base, ev.len));
                events.push(AppEvent::StackUpdate(ev));
            }
            BatchOp::Ret => {
                if let Some((base, len)) = frames.pop() {
                    sp += len;
                    events.push(AppEvent::StackUpdate(StackUpdateEvent {
                        base,
                        len,
                        kind: StackUpdateKind::Return,
                        tid,
                    }));
                }
            }
            BatchOp::Switch { tid: t } => {
                tid = t;
                events.push(AppEvent::HighLevel(HighLevelEvent::ThreadSwitch { tid: t }));
            }
        }
    }
    events
}

/// A fresh accelerator + metadata state for one monitor.
fn instance(monitor: &str, mode: FilterMode) -> (Fade, MetadataState) {
    let mon = monitor_by_name(monitor).unwrap();
    let program = mon.program();
    let mut st = MetadataState::new(program.md_map());
    mon.init_state(&mut st);
    (Fade::new(FadeConfig::paper(mode), program), st)
}

/// The canonical per-event reference: enqueue one event, tick until
/// quiescent with an always-ready consumer, collect dispatches.
fn reference_drive(
    fade: &mut Fade,
    st: &mut MetadataState,
    events: &[AppEvent],
) -> Vec<UnfilteredEvent> {
    let mut dispatched = Vec::new();
    let drain = |fade: &mut Fade, dispatched: &mut Vec<UnfilteredEvent>| {
        while let Some(uf) = fade.pop_unfiltered() {
            fade.handler_completed(uf.token);
            dispatched.push(uf);
        }
    };
    for &ev in events {
        fade.enqueue(ev).expect("queue drained between events");
        let mut guard = 0u32;
        while !fade.is_idle() {
            fade.tick(st);
            drain(fade, &mut dispatched);
            guard += 1;
            assert!(guard < 1_000_000, "reference failed to quiesce");
        }
        drain(fade, &mut dispatched);
    }
    dispatched
}

/// Compares the metadata the test can observe: every register and the
/// whole address pool (plus stack frames the ops may have touched).
fn assert_states_match(a: &MetadataState, b: &MetadataState) -> Result<(), TestCaseError> {
    for r in Reg::all() {
        prop_assert_eq!(a.reg_meta(r), b.reg_meta(r), "reg {:?}", r);
    }
    for slot in 0..16u8 {
        let addr = slot_addr(slot);
        prop_assert_eq!(a.mem_meta(addr), b.mem_meta(addr), "mem {:?}", addr);
    }
    for i in 0..64u32 {
        let addr = VirtAddr::new(layout::STACK_TOP - 8192 - 64 * 8 + i * 4);
        prop_assert_eq!(a.mem_meta(addr), b.mem_meta(addr), "stack {:?}", addr);
    }
    Ok(())
}

fn check_batch_equivalence(
    monitor: &str,
    ops: &[BatchOp],
    mode: FilterMode,
) -> Result<(), TestCaseError> {
    let (mut f_ref, mut st_ref) = instance(monitor, mode);
    let (mut f_bat, mut st_bat) = instance(monitor, mode);
    let events = lower_ops(ops, &f_ref);

    let ref_dispatched = reference_drive(&mut f_ref, &mut st_ref, &events);
    let mut bat_dispatched = Vec::new();
    let bstats = f_bat.run_batch_with(&events, &mut st_bat, |uf, _| bat_dispatched.push(uf));

    prop_assert_eq!(bstats.events, events.len() as u64);
    prop_assert_eq!(bstats.fast_path + bstats.fallback, bstats.events);
    prop_assert_eq!(bstats.dispatched, bat_dispatched.len() as u64);
    prop_assert_eq!(&bat_dispatched, &ref_dispatched, "{}: dispatch streams differ", monitor);
    prop_assert_eq!(
        f_bat.stats(), f_ref.stats(),
        "{}: FadeStats differ (batch fast_path={} fallback={})",
        monitor, bstats.fast_path, bstats.fallback
    );
    prop_assert_eq!(f_bat.md_cache_stats(), f_ref.md_cache_stats(), "{}: MD cache stats", monitor);
    prop_assert_eq!(f_bat.tlb_counts(), f_ref.tlb_counts(), "{}: M-TLB counts", monitor);
    prop_assert_eq!(f_bat.suu_writes(), f_ref.suu_writes(), "{}: SUU writes", monitor);
    prop_assert_eq!(f_bat.fsq_len(), 0, "{}: FSQ must drain", monitor);
    assert_states_match(&st_bat, &st_ref)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `run_batch` and event-at-a-time `tick` produce identical
    /// statistics, dispatch streams, cache/TLB counters and metadata
    /// state over randomized mixed streams, for every monitor.
    #[test]
    fn run_batch_matches_per_event_execution(
        ops in prop::collection::vec(batch_op(), 0..160),
        monitor_idx in 0usize..5,
    ) {
        let monitor = ["addrcheck", "memcheck", "memleak", "taintcheck", "atomcheck"][monitor_idx];
        check_batch_equivalence(monitor, &ops, FilterMode::NonBlocking)?;
    }

    /// The equivalence also holds in blocking mode (resume latency,
    /// BlockedOnHandler transitions).
    #[test]
    fn run_batch_matches_per_event_execution_blocking(
        ops in prop::collection::vec(batch_op(), 0..100),
        monitor_idx in 0usize..5,
    ) {
        let monitor = ["addrcheck", "memcheck", "memleak", "taintcheck", "atomcheck"][monitor_idx];
        check_batch_equivalence(monitor, &ops, FilterMode::Blocking)?;
    }

    /// Splitting one stream into arbitrary consecutive batches does not
    /// change anything: the batch boundary is invisible.
    #[test]
    fn batch_split_is_invisible(
        ops in prop::collection::vec(batch_op(), 0..120),
        split in 0usize..120,
    ) {
        let (mut f_one, mut st_one) = instance("memleak", FilterMode::NonBlocking);
        let (mut f_two, mut st_two) = instance("memleak", FilterMode::NonBlocking);
        let events = lower_ops(&ops, &f_one);
        let split = split.min(events.len());

        f_one.run_batch(&events, &mut st_one);
        let mut total = f_two.run_batch(&events[..split], &mut st_two);
        total.merge(&f_two.run_batch(&events[split..], &mut st_two));

        prop_assert_eq!(total.events, events.len() as u64);
        prop_assert_eq!(f_one.stats(), f_two.stats());
        prop_assert_eq!(f_one.md_cache_stats(), f_two.md_cache_stats());
        prop_assert_eq!(f_one.tlb_counts(), f_two.tlb_counts());
        assert_states_match(&st_one, &st_two)?;
    }
}

/// An all-filterable stream retires one event per cycle in steady state
/// (the paper's Figure 5 peak rate), on both execution paths.
#[test]
fn steady_state_retires_one_event_per_cycle() {
    let (mut fade, mut st) = instance("memleak", FilterMode::NonBlocking);
    // Same word repeatedly: after the first event warms the M-TLB and
    // MD cache, every event is a single-shot filtered clean check.
    let ev = {
        let i = AppInstr::new(VirtAddr::new(0x400), InstrClass::Load)
            .with_dest(Reg::new(3))
            .with_mem(MemRef::word(VirtAddr::new(layout::HEAP_BASE + 0x40)));
        AppEvent::Instr(instr_event_for(&i))
    };
    let warm = [ev; 4];
    fade.run_batch(&warm, &mut st);
    let busy0 = fade.stats().busy_cycles;
    let idle0 = fade.stats().idle_cycles;
    let filtered0 = fade.stats().filtered;

    let stream = [ev; 1000];
    let bstats = fade.run_batch(&stream, &mut st);
    assert_eq!(bstats.fast_path, 1000, "warm filterable events take the fast path");
    assert_eq!(fade.stats().filtered - filtered0, 1000);
    assert_eq!(
        fade.stats().busy_cycles - busy0,
        1000,
        "steady state must cost exactly one cycle per event"
    );
    assert_eq!(fade.stats().idle_cycles, idle0);

    // The per-event reference path agrees.
    let (mut f_ref, mut st_ref) = instance("memleak", FilterMode::NonBlocking);
    reference_drive(&mut f_ref, &mut st_ref, &warm);
    let busy0 = f_ref.stats().busy_cycles;
    reference_drive(&mut f_ref, &mut st_ref, &stream);
    assert_eq!(f_ref.stats().busy_cycles - busy0, 1000);
    assert_eq!(f_ref.stats(), fade.stats());
}

#[derive(Clone, Copy, Debug)]
enum FsqOp {
    Push { addr: u64, value: u64, token: u64 },
    Retire { token: u64 },
}

fn fsq_op() -> impl Strategy<Value = FsqOp> {
    prop_oneof![
        (0u64..16, any::<u64>(), 0u64..8)
            .prop_map(|(a, value, token)| FsqOp::Push { addr: a * 8, value, token }),
        (0u64..8).prop_map(|token| FsqOp::Retire { token }),
    ]
}

proptest! {
    /// FSQ forwarding matches a reference age-ordered store model.
    #[test]
    fn fsq_matches_reference(ops in prop::collection::vec(fsq_op(), 0..200)) {
        let mut fsq = Fsq::new(16);
        let mut reference: VecDeque<(u64, u64, u64)> = VecDeque::new(); // (addr, value, token)
        for op in ops {
            match op {
                FsqOp::Push { addr, value, token } => {
                    let ok = fsq.push(addr, 1, value, token).is_ok();
                    if reference.len() < 16 {
                        prop_assert!(ok);
                        reference.push_back((addr, value, token));
                    } else {
                        prop_assert!(!ok);
                    }
                }
                FsqOp::Retire { token } => {
                    fsq.retire(token);
                    reference.retain(|e| e.2 != token);
                }
            }
            prop_assert_eq!(fsq.len(), reference.len());
            // Youngest-match forwarding for every address.
            for probe in 0..16u64 {
                let addr = probe * 8;
                let expect = reference
                    .iter()
                    .rev()
                    .find(|e| e.0 == addr)
                    .map(|e| e.1);
                prop_assert_eq!(fsq.search(addr, 1), expect, "addr {}", addr);
            }
        }
    }

    /// The tag cache implements exact LRU per set.
    #[test]
    fn tag_cache_matches_lru_reference(addrs in prop::collection::vec(0u64..(1u64 << 14), 1..400)) {
        let cfg = TagCacheConfig {
            size_bytes: 8 * 64, // 4 sets x 2 ways
            ways: 2,
            line_bytes: 64,
        };
        let sets = cfg.sets() as u64;
        let mut cache = TagCache::new(cfg);
        // Reference: per-set MRU-ordered list of lines.
        let mut reference: Vec<Vec<u64>> = vec![Vec::new(); sets as usize];
        for &a in &addrs {
            let line = a / 64;
            let set = (line % sets) as usize;
            let hit_ref = reference[set].contains(&line);
            let hit = cache.access(a);
            prop_assert_eq!(hit, hit_ref, "addr {}", a);
            if let Some(pos) = reference[set].iter().position(|&l| l == line) {
                reference[set].remove(pos);
            } else if reference[set].len() == 2 {
                reference[set].pop();
            }
            reference[set].insert(0, line);
        }
    }

    /// Unconditional update actions follow their algebra.
    #[test]
    fn nb_actions_algebra(s1: u64, s2: u64, d: u64, c: u64) {
        let mut inv = InvRf::new();
        inv.write(InvId::new(0), c);
        let ops = OperandMeta { s1, s2, d };
        prop_assert_eq!(
            NbUpdate::unconditional(NbAction::PropagateS1).evaluate(&ops, &inv),
            Some(s1)
        );
        prop_assert_eq!(
            NbUpdate::unconditional(NbAction::ComposeOr).evaluate(&ops, &inv),
            Some(s1 | s2)
        );
        prop_assert_eq!(
            NbUpdate::unconditional(NbAction::ComposeAnd).evaluate(&ops, &inv),
            Some(s1 & s2)
        );
        prop_assert_eq!(
            NbUpdate::unconditional(NbAction::SetConst(InvId::new(0))).evaluate(&ops, &inv),
            Some(c)
        );
    }

    /// Conditional updates take exactly one branch, decided by equality.
    #[test]
    fn nb_conditions_partition(s1: u64, s2: u64, d: u64) {
        let inv = InvRf::new();
        let ops = OperandMeta { s1, s2, d };
        let cond = NbCond {
            lhs: NbCondOperand::S1,
            rhs: NbCondOperand::S2,
            when_equal: true,
        };
        let with_else =
            NbUpdate::when_else(cond, NbAction::PropagateS1, NbAction::PropagateS2);
        let expected = if s1 == s2 { s1 } else { s2 };
        prop_assert_eq!(with_else.evaluate(&ops, &inv), Some(expected));
        // Without an else branch, the failed case is a no-op.
        let without = NbUpdate::when(cond, NbAction::PropagateS1);
        prop_assert_eq!(
            without.evaluate(&ops, &inv),
            if s1 == s2 { Some(s1) } else { None }
        );
    }

    /// Cache statistics count every access exactly once.
    #[test]
    fn cache_stats_conserve_accesses(addrs in prop::collection::vec(0u64..(1u64 << 16), 0..300)) {
        let mut cache = TagCache::new(TagCacheConfig::md_cache());
        for &a in &addrs {
            cache.access(a);
        }
        prop_assert_eq!(cache.stats().accesses(), addrs.len() as u64);
        let ratio = cache.stats().hit_ratio();
        prop_assert!((0.0..=1.0).contains(&ratio));
    }
}
