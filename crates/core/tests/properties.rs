//! Property tests for the accelerator's storage structures and the
//! non-blocking update algebra.

use std::collections::VecDeque;

use fade::{Fsq, InvId, InvRf, NbAction, NbCond, NbCondOperand, NbUpdate, OperandMeta, TagCache, TagCacheConfig};
use proptest::prelude::*;

#[derive(Clone, Copy, Debug)]
enum FsqOp {
    Push { addr: u64, value: u64, token: u64 },
    Retire { token: u64 },
}

fn fsq_op() -> impl Strategy<Value = FsqOp> {
    prop_oneof![
        (0u64..16, any::<u64>(), 0u64..8)
            .prop_map(|(a, value, token)| FsqOp::Push { addr: a * 8, value, token }),
        (0u64..8).prop_map(|token| FsqOp::Retire { token }),
    ]
}

proptest! {
    /// FSQ forwarding matches a reference age-ordered store model.
    #[test]
    fn fsq_matches_reference(ops in prop::collection::vec(fsq_op(), 0..200)) {
        let mut fsq = Fsq::new(16);
        let mut reference: VecDeque<(u64, u64, u64)> = VecDeque::new(); // (addr, value, token)
        for op in ops {
            match op {
                FsqOp::Push { addr, value, token } => {
                    let ok = fsq.push(addr, 1, value, token).is_ok();
                    if reference.len() < 16 {
                        prop_assert!(ok);
                        reference.push_back((addr, value, token));
                    } else {
                        prop_assert!(!ok);
                    }
                }
                FsqOp::Retire { token } => {
                    fsq.retire(token);
                    reference.retain(|e| e.2 != token);
                }
            }
            prop_assert_eq!(fsq.len(), reference.len());
            // Youngest-match forwarding for every address.
            for probe in 0..16u64 {
                let addr = probe * 8;
                let expect = reference
                    .iter()
                    .rev()
                    .find(|e| e.0 == addr)
                    .map(|e| e.1);
                prop_assert_eq!(fsq.search(addr, 1), expect, "addr {}", addr);
            }
        }
    }

    /// The tag cache implements exact LRU per set.
    #[test]
    fn tag_cache_matches_lru_reference(addrs in prop::collection::vec(0u64..(1u64 << 14), 1..400)) {
        let cfg = TagCacheConfig {
            size_bytes: 8 * 64, // 4 sets x 2 ways
            ways: 2,
            line_bytes: 64,
        };
        let sets = cfg.sets() as u64;
        let mut cache = TagCache::new(cfg);
        // Reference: per-set MRU-ordered list of lines.
        let mut reference: Vec<Vec<u64>> = vec![Vec::new(); sets as usize];
        for &a in &addrs {
            let line = a / 64;
            let set = (line % sets) as usize;
            let hit_ref = reference[set].contains(&line);
            let hit = cache.access(a);
            prop_assert_eq!(hit, hit_ref, "addr {}", a);
            if let Some(pos) = reference[set].iter().position(|&l| l == line) {
                reference[set].remove(pos);
            } else if reference[set].len() == 2 {
                reference[set].pop();
            }
            reference[set].insert(0, line);
        }
    }

    /// Unconditional update actions follow their algebra.
    #[test]
    fn nb_actions_algebra(s1: u64, s2: u64, d: u64, c: u64) {
        let mut inv = InvRf::new();
        inv.write(InvId::new(0), c);
        let ops = OperandMeta { s1, s2, d };
        prop_assert_eq!(
            NbUpdate::unconditional(NbAction::PropagateS1).evaluate(&ops, &inv),
            Some(s1)
        );
        prop_assert_eq!(
            NbUpdate::unconditional(NbAction::ComposeOr).evaluate(&ops, &inv),
            Some(s1 | s2)
        );
        prop_assert_eq!(
            NbUpdate::unconditional(NbAction::ComposeAnd).evaluate(&ops, &inv),
            Some(s1 & s2)
        );
        prop_assert_eq!(
            NbUpdate::unconditional(NbAction::SetConst(InvId::new(0))).evaluate(&ops, &inv),
            Some(c)
        );
    }

    /// Conditional updates take exactly one branch, decided by equality.
    #[test]
    fn nb_conditions_partition(s1: u64, s2: u64, d: u64) {
        let inv = InvRf::new();
        let ops = OperandMeta { s1, s2, d };
        let cond = NbCond {
            lhs: NbCondOperand::S1,
            rhs: NbCondOperand::S2,
            when_equal: true,
        };
        let with_else =
            NbUpdate::when_else(cond, NbAction::PropagateS1, NbAction::PropagateS2);
        let expected = if s1 == s2 { s1 } else { s2 };
        prop_assert_eq!(with_else.evaluate(&ops, &inv), Some(expected));
        // Without an else branch, the failed case is a no-op.
        let without = NbUpdate::when(cond, NbAction::PropagateS1);
        prop_assert_eq!(
            without.evaluate(&ops, &inv),
            if s1 == s2 { Some(s1) } else { None }
        );
    }

    /// Cache statistics count every access exactly once.
    #[test]
    fn cache_stats_conserve_accesses(addrs in prop::collection::vec(0u64..(1u64 << 16), 0..300)) {
        let mut cache = TagCache::new(TagCacheConfig::md_cache());
        for &a in &addrs {
            cache.access(a);
        }
        prop_assert_eq!(cache.stats().accesses(), addrs.len() as u64);
        let ratio = cache.stats().hit_ratio();
        prop_assert!((0.0..=1.0).contains(&ratio));
    }
}
