//! The filter logic of the Filter stage (Figure 7).
//!
//! Three identical two-operand comparison blocks (f1, f2, f3) each
//! compare one event operand's metadata with another operand or with an
//! invariant register; a clocked register and a mux (controlled by the
//! MS bit) chain multi-shot outcomes. This module is the *combinational*
//! part: pure functions from fetched metadata to a filtering decision.

use crate::event_table::{EventTableEntry, FilterKind, OperandSel, RuCompose};
use crate::invrf::InvRf;

/// Metadata values fetched for the (up to) three event operands during
/// the Metadata Read stage, already masked per the operand rules.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct OperandMeta {
    /// First source operand metadata.
    pub s1: u64,
    /// Second source operand metadata.
    pub s2: u64,
    /// Destination operand metadata.
    pub d: u64,
}

impl OperandMeta {
    /// The value for an operand selector.
    #[inline]
    pub fn get(&self, sel: OperandSel) -> u64 {
        match sel {
            OperandSel::S1 => self.s1,
            OperandSel::S2 => self.s2,
            OperandSel::D => self.d,
        }
    }
}

/// Result of evaluating one shot of an entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FilterDecision {
    /// The filtering condition of this shot was satisfied.
    pub condition_holds: bool,
}

/// Evaluates one event-table entry (one *shot*) against fetched operand
/// metadata.
///
/// * Clean check: every valid operand with an INV id must have masked
///   metadata equal to the (equally masked) invariant value.
/// * Redundant update: the composed source metadata must equal the
///   destination metadata.
pub fn evaluate_shot(entry: &EventTableEntry, ops: &OperandMeta, inv: &InvRf) -> FilterDecision {
    let holds = match entry.kind {
        FilterKind::CleanCheck => OperandSel::ALL.iter().all(|&sel| {
            let rule = entry.operand(sel);
            if !rule.valid {
                return true;
            }
            match rule.inv_id {
                None => true,
                Some(id) => ops.get(sel) == (inv.read(id) & rule.mask),
            }
        }),
        FilterKind::RedundantUpdate(compose) => {
            let s1v = entry.operand(OperandSel::S1).valid;
            let s2v = entry.operand(OperandSel::S2).valid;
            let composed = match (compose, s1v, s2v) {
                (RuCompose::Direct, true, _) => ops.s1,
                (RuCompose::Direct, false, true) => ops.s2,
                (RuCompose::Or, true, true) => ops.s1 | ops.s2,
                (RuCompose::And, true, true) => ops.s1 & ops.s2,
                // Degenerate encodings fall back to s1; validation
                // rejects programs that rely on them.
                _ => ops.s1,
            };
            composed == ops.d
        }
    };
    FilterDecision {
        condition_holds: holds,
    }
}

/// The multi-shot chaining register of Figure 7: a one-bit clocked
/// register plus the MS-controlled mux.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShotChain {
    prev: bool,
}

impl ShotChain {
    /// Creates a chain register (initial content irrelevant; the first
    /// shot of a chain must have `ms == false`).
    pub fn new() -> Self {
        ShotChain { prev: true }
    }

    /// Combines this shot's outcome with the chain state per the MS bit,
    /// latches the result, and returns it.
    pub fn step(&mut self, ms: bool, outcome: bool) -> bool {
        let combined = if ms { self.prev && outcome } else { outcome };
        self.prev = combined;
        combined
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event_table::{EventTableEntry, OperandRule};
    use crate::invrf::InvId;

    fn inv_with(id: u8, v: u64) -> InvRf {
        let mut rf = InvRf::new();
        rf.write(InvId::new(id), v);
        rf
    }

    #[test]
    fn clean_check_passes_when_all_match() {
        let inv = inv_with(0, 0);
        let e = EventTableEntry::clean_check([
            Some(OperandRule::mem_operand(1, 0xff, InvId::new(0))),
            None,
            Some(OperandRule::reg_operand(0xff, InvId::new(0))),
        ]);
        let ok = evaluate_shot(&e, &OperandMeta { s1: 0, s2: 9, d: 0 }, &inv);
        assert!(ok.condition_holds, "s2 is invalid so its value is ignored");
        let bad = evaluate_shot(&e, &OperandMeta { s1: 1, s2: 0, d: 0 }, &inv);
        assert!(!bad.condition_holds);
    }

    #[test]
    fn clean_check_compares_against_distinct_invariants() {
        let mut inv = InvRf::new();
        inv.write(InvId::new(1), 2);
        inv.write(InvId::new(2), 3);
        let e = EventTableEntry::clean_check([
            Some(OperandRule::reg_operand(0xff, InvId::new(1))),
            Some(OperandRule::reg_operand(0xff, InvId::new(2))),
            None,
        ]);
        assert!(
            evaluate_shot(&e, &OperandMeta { s1: 2, s2: 3, d: 0 }, &inv).condition_holds
        );
        assert!(
            !evaluate_shot(&e, &OperandMeta { s1: 3, s2: 2, d: 0 }, &inv).condition_holds
        );
    }

    #[test]
    fn clean_check_invariant_is_masked() {
        let inv = inv_with(0, 0xffff);
        let e = EventTableEntry::clean_check([
            Some(OperandRule::reg_operand(0x0f, InvId::new(0))),
            None,
            None,
        ]);
        // Operand metadata is pre-masked to 0x0f; invariant masked too.
        assert!(
            evaluate_shot(&e, &OperandMeta { s1: 0x0f, s2: 0, d: 0 }, &inv).condition_holds
        );
    }

    #[test]
    fn redundant_update_direct() {
        let inv = InvRf::new();
        let e = EventTableEntry::redundant_update(
            [
                Some(OperandRule::mem_plain(1, 0xff)),
                None,
                Some(OperandRule::reg_plain(0xff)),
            ],
            RuCompose::Direct,
        );
        assert!(
            evaluate_shot(&e, &OperandMeta { s1: 5, s2: 0, d: 5 }, &inv).condition_holds
        );
        assert!(
            !evaluate_shot(&e, &OperandMeta { s1: 5, s2: 0, d: 4 }, &inv).condition_holds
        );
    }

    #[test]
    fn redundant_update_or_and() {
        let inv = InvRf::new();
        let rules = [
            Some(OperandRule::reg_plain(0xff)),
            Some(OperandRule::reg_plain(0xff)),
            Some(OperandRule::reg_plain(0xff)),
        ];
        let or = EventTableEntry::redundant_update(rules, RuCompose::Or);
        assert!(
            evaluate_shot(&or, &OperandMeta { s1: 1, s2: 2, d: 3 }, &inv).condition_holds
        );
        let and = EventTableEntry::redundant_update(rules, RuCompose::And);
        assert!(
            evaluate_shot(&and, &OperandMeta { s1: 3, s2: 1, d: 1 }, &inv).condition_holds
        );
        assert!(
            !evaluate_shot(&and, &OperandMeta { s1: 3, s2: 1, d: 3 }, &inv).condition_holds
        );
    }

    #[test]
    fn shot_chain_ands_when_ms_set() {
        let mut chain = ShotChain::new();
        assert!(chain.step(false, true)); // first shot: latch outcome
        assert!(!chain.step(true, false)); // chained: true && false
        assert!(!chain.step(true, true)); // chained onto false stays false
        assert!(chain.step(false, true)); // fresh chain resets
    }
}
