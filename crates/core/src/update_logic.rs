//! Non-blocking metadata-update logic (Section 5.2).
//!
//! For an unfilterable event, the MD update logic computes the new value
//! of the *critical* metadata in the Filter stage, so dependent events
//! can keep filtering while the software handler is still in flight.
//! The paper supports four rule shapes:
//!
//! 1. propagate a source operand's metadata to the destination;
//! 2. compose the two sources with OR or AND;
//! 3. set the destination to a constant from an INV register;
//! 4. conditionally perform one of the above after comparing the source
//!    operands to each other, to the destination, or to a constant.

use crate::filter_logic::OperandMeta;
use crate::invrf::{InvId, InvRf};

/// An unconditional non-blocking update action.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NbAction {
    /// Destination metadata := `s1` metadata.
    PropagateS1,
    /// Destination metadata := `s2` metadata.
    PropagateS2,
    /// Destination metadata := `s1 | s2`.
    ComposeOr,
    /// Destination metadata := `s1 & s2`.
    ComposeAnd,
    /// Destination metadata := INV register constant.
    SetConst(InvId),
}

/// Operand of a non-blocking condition comparison.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NbCondOperand {
    /// The `s1` metadata value.
    S1,
    /// The `s2` metadata value.
    S2,
    /// The destination's current metadata value.
    D,
    /// A constant from the INV RF.
    Inv(InvId),
}

/// A condition gating a non-blocking update: compare two values for
/// (in)equality.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NbCond {
    /// Left-hand side of the comparison.
    pub lhs: NbCondOperand,
    /// Right-hand side of the comparison.
    pub rhs: NbCondOperand,
    /// Apply the action when the comparison result equals this value
    /// (`true` = apply on equality, `false` = apply on inequality).
    pub when_equal: bool,
}

/// A complete non-blocking update rule: an action, optionally gated by a
/// condition (rule shape 4); when the condition fails, `else_action`
/// applies instead (or no update if `None`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NbUpdate {
    /// Action applied when the condition holds (or unconditionally).
    pub action: NbAction,
    /// Optional gating condition.
    pub cond: Option<NbCond>,
    /// Action applied when the condition fails.
    pub else_action: Option<NbAction>,
}

impl NbUpdate {
    /// An unconditional update.
    pub fn unconditional(action: NbAction) -> Self {
        NbUpdate {
            action,
            cond: None,
            else_action: None,
        }
    }

    /// A conditional update with no else-action.
    pub fn when(cond: NbCond, action: NbAction) -> Self {
        NbUpdate {
            action,
            cond: Some(cond),
            else_action: None,
        }
    }

    /// A conditional update with an else-action.
    pub fn when_else(cond: NbCond, action: NbAction, else_action: NbAction) -> Self {
        NbUpdate {
            action,
            cond: Some(cond),
            else_action: Some(else_action),
        }
    }

    /// Evaluates the rule against the fetched operand metadata and the
    /// invariant register file, returning the new destination metadata
    /// value, or `None` when the (failed-condition, no-else) case leaves
    /// the destination unchanged.
    pub fn evaluate(&self, ops: &OperandMeta, inv: &InvRf) -> Option<u64> {
        let action = match self.cond {
            None => Some(self.action),
            Some(c) => {
                let lhs = Self::cond_value(c.lhs, ops, inv);
                let rhs = Self::cond_value(c.rhs, ops, inv);
                if (lhs == rhs) == c.when_equal {
                    Some(self.action)
                } else {
                    self.else_action
                }
            }
        };
        action.map(|a| match a {
            NbAction::PropagateS1 => ops.s1,
            NbAction::PropagateS2 => ops.s2,
            NbAction::ComposeOr => ops.s1 | ops.s2,
            NbAction::ComposeAnd => ops.s1 & ops.s2,
            NbAction::SetConst(id) => inv.read(id),
        })
    }

    fn cond_value(op: NbCondOperand, ops: &OperandMeta, inv: &InvRf) -> u64 {
        match op {
            NbCondOperand::S1 => ops.s1,
            NbCondOperand::S2 => ops.s2,
            NbCondOperand::D => ops.d,
            NbCondOperand::Inv(id) => inv.read(id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops(s1: u64, s2: u64, d: u64) -> OperandMeta {
        OperandMeta { s1, s2, d }
    }

    #[test]
    fn propagate_rules() {
        let inv = InvRf::new();
        let o = ops(1, 2, 3);
        assert_eq!(
            NbUpdate::unconditional(NbAction::PropagateS1).evaluate(&o, &inv),
            Some(1)
        );
        assert_eq!(
            NbUpdate::unconditional(NbAction::PropagateS2).evaluate(&o, &inv),
            Some(2)
        );
    }

    #[test]
    fn compose_rules() {
        let inv = InvRf::new();
        let o = ops(0b0101, 0b0011, 0);
        assert_eq!(
            NbUpdate::unconditional(NbAction::ComposeOr).evaluate(&o, &inv),
            Some(0b0111)
        );
        assert_eq!(
            NbUpdate::unconditional(NbAction::ComposeAnd).evaluate(&o, &inv),
            Some(0b0001)
        );
    }

    #[test]
    fn set_const_reads_inv_rf() {
        let mut inv = InvRf::new();
        inv.write(InvId::new(3), 42);
        let u = NbUpdate::unconditional(NbAction::SetConst(InvId::new(3)));
        assert_eq!(u.evaluate(&ops(0, 0, 0), &inv), Some(42));
    }

    #[test]
    fn conditional_on_equality() {
        let inv = InvRf::new();
        let cond = NbCond {
            lhs: NbCondOperand::S1,
            rhs: NbCondOperand::S2,
            when_equal: true,
        };
        let u = NbUpdate::when(cond, NbAction::PropagateS1);
        assert_eq!(u.evaluate(&ops(5, 5, 0), &inv), Some(5));
        assert_eq!(u.evaluate(&ops(5, 6, 0), &inv), None);
    }

    #[test]
    fn conditional_against_constant_with_else() {
        let mut inv = InvRf::new();
        inv.write(InvId::new(0), 7); // threshold constant
        inv.write(InvId::new(1), 99); // else value
        let cond = NbCond {
            lhs: NbCondOperand::D,
            rhs: NbCondOperand::Inv(InvId::new(0)),
            when_equal: true,
        };
        let u = NbUpdate::when_else(
            cond,
            NbAction::PropagateS1,
            NbAction::SetConst(InvId::new(1)),
        );
        // d == 7: propagate s1.
        assert_eq!(u.evaluate(&ops(3, 0, 7), &inv), Some(3));
        // d != 7: set constant.
        assert_eq!(u.evaluate(&ops(3, 0, 8), &inv), Some(99));
    }

    #[test]
    fn conditional_on_inequality() {
        let inv = InvRf::new();
        let cond = NbCond {
            lhs: NbCondOperand::S1,
            rhs: NbCondOperand::D,
            when_equal: false,
        };
        let u = NbUpdate::when(cond, NbAction::PropagateS1);
        assert_eq!(u.evaluate(&ops(1, 0, 0), &inv), Some(1));
        assert_eq!(u.evaluate(&ops(0, 0, 0), &inv), None);
    }
}
