//! The Filter Store Queue (FSQ) — Section 5.2.
//!
//! When the non-blocking update logic produces new critical metadata for
//! a *memory* destination, the value is committed to the FSQ in the
//! Metadata Write stage. Dependent events search the FSQ in parallel
//! with the MD cache and use the youngest matching entry. When the
//! software handler for the originating unfiltered event completes, the
//! MD cache holds the authoritative value and the FSQ entry is
//! discarded.

use std::collections::VecDeque;

/// The FSQ is at capacity; the pipeline must stall until a handler
/// completion retires an entry. Mirrors the hardware's "full" wire,
/// but as a nameable type so callers and logs say *which* structure
/// pushed back.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FsqFull;

impl std::fmt::Display for FsqFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("filter store queue full")
    }
}

impl std::error::Error for FsqFull {}

/// One FSQ entry: an updated metadata value pending software completion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FsqEntry {
    /// Metadata-space address of the update.
    pub md_addr: u64,
    /// Number of metadata bytes (1..=8).
    pub bytes: u8,
    /// The updated value (little-endian packed).
    pub value: u64,
    /// Token of the unfiltered event that produced the update; the entry
    /// is discarded when that event's handler completes.
    pub token: u64,
}

/// An age-ordered, address-searchable store queue.
///
/// # Example
///
/// ```
/// use fade::Fsq;
/// let mut fsq = Fsq::new(16);
/// fsq.push(0x100, 1, 0xaa, 7).unwrap();
/// assert_eq!(fsq.search(0x100, 1), Some(0xaa));
/// fsq.retire(7);
/// assert_eq!(fsq.search(0x100, 1), None);
/// ```
#[derive(Clone, Debug)]
pub struct Fsq {
    entries: VecDeque<FsqEntry>,
    capacity: usize,
    max_occupancy: usize,
}

impl Fsq {
    /// Creates an FSQ with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "FSQ needs at least one entry");
        Fsq {
            entries: VecDeque::new(),
            capacity,
            max_occupancy: 0,
        }
    }

    /// Allocates an entry.
    ///
    /// # Errors
    ///
    /// Returns [`FsqFull`] when the queue is at capacity; the pipeline
    /// must stall until [`Fsq::retire`] frees an entry.
    pub fn push(&mut self, md_addr: u64, bytes: u8, value: u64, token: u64) -> Result<(), FsqFull> {
        if self.entries.len() >= self.capacity {
            return Err(FsqFull);
        }
        self.entries.push_back(FsqEntry {
            md_addr,
            bytes,
            value,
            token,
        });
        self.max_occupancy = self.max_occupancy.max(self.entries.len());
        Ok(())
    }

    /// Searches for the youngest entry overlapping `[md_addr,
    /// md_addr+bytes)` and returns its value if the entry fully covers
    /// the request at the same address/width (the hardware forwards only
    /// exact-width matches; partial overlap is conservatively treated as
    /// a miss by returning the entry value only on exact match).
    pub fn search(&self, md_addr: u64, bytes: u8) -> Option<u64> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.md_addr == md_addr && e.bytes == bytes)
            .map(|e| e.value)
    }

    /// Returns `true` if any entry overlaps the byte range (used to
    /// detect partial-overlap hazards).
    pub fn overlaps(&self, md_addr: u64, bytes: u8) -> bool {
        let end = md_addr + bytes as u64;
        self.entries
            .iter()
            .any(|e| e.md_addr < end && md_addr < e.md_addr + e.bytes as u64)
    }

    /// Discards all entries belonging to a completed unfiltered event.
    pub fn retire(&mut self, token: u64) {
        self.entries.retain(|e| e.token != token);
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns `true` when at capacity.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Highest occupancy observed.
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn youngest_match_wins() {
        let mut fsq = Fsq::new(8);
        fsq.push(0x10, 1, 1, 100).unwrap();
        fsq.push(0x10, 1, 2, 101).unwrap();
        assert_eq!(fsq.search(0x10, 1), Some(2));
    }

    #[test]
    fn retire_discards_only_matching_token() {
        let mut fsq = Fsq::new(8);
        fsq.push(0x10, 1, 1, 100).unwrap();
        fsq.push(0x20, 1, 2, 101).unwrap();
        fsq.retire(100);
        assert_eq!(fsq.search(0x10, 1), None);
        assert_eq!(fsq.search(0x20, 1), Some(2));
        assert_eq!(fsq.len(), 1);
    }

    #[test]
    fn capacity_enforced() {
        let mut fsq = Fsq::new(2);
        fsq.push(0, 1, 0, 0).unwrap();
        fsq.push(8, 1, 0, 1).unwrap();
        assert!(fsq.is_full());
        assert_eq!(fsq.push(16, 1, 0, 2), Err(FsqFull));
        assert_eq!(fsq.max_occupancy(), 2);
    }

    #[test]
    fn overlap_detection() {
        let mut fsq = Fsq::new(4);
        fsq.push(0x100, 4, 0, 0).unwrap();
        assert!(fsq.overlaps(0x102, 1));
        assert!(fsq.overlaps(0xfe, 4));
        assert!(!fsq.overlaps(0x104, 4));
        // Exact-width search misses on partial overlap.
        assert_eq!(fsq.search(0x102, 1), None);
    }

    #[test]
    #[should_panic(expected = "FSQ needs at least one entry")]
    fn zero_capacity_panics() {
        let _ = Fsq::new(0);
    }
}
