//! The top-level FADE accelerator.
//!
//! Composes the Filtering Unit pipeline, the Stack-Update Unit, the MD
//! cache + M-TLB, and (in non-blocking mode) the metadata-update logic
//! and the Filter Store Queue, behind a cycle-accurate [`Fade::tick`].
//!
//! # Timing model
//!
//! The four-stage pipeline of Figure 5 sustains one event per cycle in
//! steady state; what this model tracks is every source of *lost*
//! cycles:
//!
//! * extra shots of multi-shot events (one cycle per chained check),
//! * MD cache misses (L2/DRAM fill latency) and M-TLB misses (software
//!   fill),
//! * unfiltered-queue backpressure and FSQ exhaustion,
//! * draining before stack updates, and the SUU's line writes,
//! * in blocking mode, the stall from dispatching an unfiltered event
//!   until its software handler completes (Section 5 removes exactly
//!   this stall).
//!
//! # Functional model
//!
//! Metadata is updated in program order at filter time: non-blocking
//! critical updates are applied by the update logic the cycle the event
//! resolves, which is also what the paper's hardware guarantees
//! dependent events will observe (via MD-RF write or FSQ forwarding).
//! Software handlers later apply the *same* critical values (DESIGN.md
//! invariant 2), so eager application keeps the functional stream
//! identical in blocking mode, non-blocking mode, and software-only
//! runs.

use fade_isa::{AppEvent, EventId, HighLevelEvent, InstrEvent, StackUpdateEvent};
use fade_shadow::MetadataState;
use fade_sim::{BoundedQueue, MemLatency, QueueDepth};

use crate::event_table::{EventTableEntry, HandlerPc, OperandSel};
use crate::filter_logic::{evaluate_shot, OperandMeta, ShotChain};
use crate::fsq::Fsq;
use crate::invrf::InvId;
use crate::md_cache::{CacheStats, TagCache, TagCacheConfig};
use crate::md_tlb::MdTlb;
use crate::program::FadeProgram;
use crate::suu::StackUpdateUnit;

/// Blocking (baseline, Section 4) or Non-Blocking (Section 5) filtering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FilterMode {
    /// Baseline FADE: stall filtering from dispatching an unfiltered
    /// event until its software handler completes.
    Blocking,
    /// Non-Blocking FADE: keep filtering past unfiltered events using
    /// the metadata-update logic and the FSQ.
    NonBlocking,
}

/// Accelerator configuration (defaults follow Section 6).
#[derive(Clone, Copy, Debug)]
pub struct FadeConfig {
    /// Event queue depth (paper: 32).
    pub event_queue: QueueDepth,
    /// Unfiltered event queue depth (paper: 16).
    pub unfiltered_queue: QueueDepth,
    /// Filter store queue entries (non-blocking only).
    pub fsq_entries: usize,
    /// MD cache geometry (paper: 4 KB, 2-way, 64 B).
    pub md_cache: TagCacheConfig,
    /// M-TLB entries (paper: 16).
    pub tlb_entries: usize,
    /// Cycles to service an M-TLB miss in software.
    pub tlb_miss_penalty: u32,
    /// Blocking mode only: cycles from handler completion until the
    /// updated metadata are visible to the Filtering Unit and filtering
    /// resumes (cross-core signalling + metadata handoff). Non-blocking
    /// filtering exists precisely to hide this round trip (Section 5).
    pub blocking_resume_latency: u32,
    /// Blocking or non-blocking filtering.
    pub mode: FilterMode,
    /// Memory latencies behind the MD cache.
    pub mem_lat: MemLatency,
}

impl FadeConfig {
    /// The paper's evaluated configuration with the given mode.
    pub fn paper(mode: FilterMode) -> Self {
        FadeConfig {
            event_queue: QueueDepth::Bounded(32),
            unfiltered_queue: QueueDepth::Bounded(16),
            fsq_entries: 16,
            md_cache: TagCacheConfig::md_cache(),
            tlb_entries: MdTlb::DEFAULT_ENTRIES,
            tlb_miss_penalty: 60,
            blocking_resume_latency: 30,
            mode,
            mem_lat: MemLatency::table1(),
        }
    }
}

impl Default for FadeConfig {
    fn default() -> Self {
        FadeConfig::paper(FilterMode::NonBlocking)
    }
}

/// An event FADE could not filter, bound for the software consumer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UnfilteredEvent {
    /// The original application event.
    pub event: AppEvent,
    /// Handler the monitor should run.
    pub handler: HandlerPc,
    /// `true` if a partial check passed and `handler` is the short
    /// handler (Section 4.1, Partial Filtering).
    pub partial_hit: bool,
    /// Completion token: pass to [`Fade::handler_completed`] when the
    /// software handler finishes.
    pub token: u64,
}

/// Counters exported by the accelerator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FadeStats {
    /// Instruction events processed.
    pub instr_events: u64,
    /// Instruction events filtered outright.
    pub filtered: u64,
    /// Partial-filter events whose hardware check passed (short
    /// handler dispatched).
    pub partial_hits: u64,
    /// Instruction events dispatched with the full handler.
    pub unfiltered_instr: u64,
    /// Stack-update events processed by the SUU.
    pub stack_updates: u64,
    /// High-level events forwarded to software.
    pub high_level: u64,
    /// Total filter-logic shots evaluated.
    pub shots: u64,
    /// Cycles the filtering unit did useful work.
    pub busy_cycles: u64,
    /// Cycles with no event available.
    pub idle_cycles: u64,
    /// Cycles stalled in blocking mode waiting for a handler.
    pub blocking_stall_cycles: u64,
    /// Cycles stalled because the unfiltered queue was full.
    pub ufq_full_stall_cycles: u64,
    /// Cycles stalled because the FSQ was full.
    pub fsq_full_stall_cycles: u64,
    /// Cycles stalled draining before a stack update.
    pub drain_stall_cycles: u64,
    /// Cycles the SUU was writing frame metadata.
    pub suu_busy_cycles: u64,
    /// Cycles paying MD-cache miss latency.
    pub md_miss_stall_cycles: u64,
    /// Cycles paying M-TLB software-fill latency.
    pub tlb_miss_stall_cycles: u64,
}

impl FadeStats {
    /// The *functional* event counters — the ones that depend only on
    /// the program-order event stream and metadata values, never on
    /// timing. Any two executions of the same stream (per-event vs
    /// batched, blocking vs non-blocking consumer pacing) must agree
    /// on these exactly; the cycle/stall counters legitimately differ.
    /// One definition here so every differential harness checks the
    /// same contract.
    pub fn functional_counters(&self) -> [u64; 7] {
        [
            self.instr_events,
            self.filtered,
            self.partial_hits,
            self.unfiltered_instr,
            self.stack_updates,
            self.high_level,
            self.shots,
        ]
    }

    /// Fraction of instruction event *handlers* elided: filtered events
    /// plus partial hits (whose complex handler was replaced by the
    /// short one), over all instruction events — the paper's "filtering
    /// efficiency" (Table 2).
    pub fn filtering_ratio(&self) -> f64 {
        if self.instr_events == 0 {
            return 1.0;
        }
        (self.filtered + self.partial_hits) as f64 / self.instr_events as f64
    }
}

/// What happened during one [`Fade::tick`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FadeTick {
    /// An event was dispatched to the unfiltered queue this cycle. The
    /// system must apply the event's *functional* handler effect now —
    /// metadata evolves in program order at filter time (see the module
    /// docs); the monitor core only pays the handler's execution time
    /// when it later pops the queue.
    pub dispatched: Option<UnfilteredEvent>,
}

impl FadeTick {
    /// The dispatched high-level event, if this cycle dispatched one.
    pub fn dispatched_high_level(&self) -> Option<HighLevelEvent> {
        match self.dispatched {
            Some(UnfilteredEvent {
                event: AppEvent::HighLevel(ev),
                ..
            }) => Some(ev),
            _ => None,
        }
    }
}

/// Counters for one [`Fade::run_batch`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Events drained from the batch.
    pub events: u64,
    /// Events that took the short-circuit fast path: single-shot
    /// instruction events whose metadata structures were warm (M-TLB
    /// and MD-cache hits, by the MRU window or a real lookup), i.e.
    /// that paid no miss penalty.
    pub fast_path: u64,
    /// Events off the fast path: stack updates, high-level events and
    /// multi-shot chains (the cycle-accurate [`Fade::tick`] machinery),
    /// plus single-shot events that missed in the M-TLB or MD cache.
    pub fallback: u64,
    /// Events dispatched to the software consumer during the batch.
    pub dispatched: u64,
    /// Queue-occupancy integral: the sum, over every batch event, of
    /// the modeled software-queue depth when that event entered the
    /// filter. The model is a Lindley recurrence the batched path can
    /// afford: each dispatched event deepens the queue by
    /// [`BatchStats::OCC_COST`] (handler work outpaces retirement),
    /// every event drains one unit. Purely observational — it never
    /// affects filtering results — but unlike the post-hoc stall
    /// counters it *sees* queue build-up inside batched stretches,
    /// which is the covariate the sampling estimator needs for
    /// monitor-bound runs.
    pub occ_integral: u64,
    /// Modeled queue depth left at the end of the batch (the state the
    /// integral recurrence carries; merged chronologically).
    pub occ_depth: u64,
}

impl BatchStats {
    /// Modeled queue growth per dispatched event: the handler consumes
    /// events slower than the filter produces them, so a dispatch costs
    /// one drain slot plus one backlog slot.
    pub const OCC_COST: u64 = 2;

    /// Folds another batch's counters into this one. Batches merge in
    /// execution order: the occupancy integral sums, the carried depth
    /// is whatever the later batch left behind.
    pub fn merge(&mut self, other: &BatchStats) {
        self.events += other.events;
        self.fast_path += other.fast_path;
        self.fallback += other.fallback;
        self.dispatched += other.dispatched;
        self.occ_integral += other.occ_integral;
        self.occ_depth = other.occ_depth;
    }

    /// Advances the occupancy model over one event that dispatched
    /// `dispatched` events to software (0 = filtered).
    #[inline]
    pub(crate) fn occ_event(&mut self, dispatched: u64) {
        self.occ_integral += self.occ_depth;
        if dispatched > 0 {
            self.occ_depth += Self::OCC_COST * dispatched;
        } else {
            self.occ_depth = self.occ_depth.saturating_sub(1);
        }
    }

    /// Advances the occupancy model over a run of `n` consecutive
    /// filtered events in closed form — exactly what `n` successive
    /// [`BatchStats::occ_event`]`(0)` calls would do, so the vectorized
    /// bulk-retire path stays bit-identical to the scalar loop.
    #[inline]
    pub(crate) fn occ_filtered_run(&mut self, n: u64) {
        let q = self.occ_depth;
        if n >= q {
            self.occ_integral += q * (q + 1) / 2;
            self.occ_depth = 0;
        } else {
            self.occ_integral += n * q - n * (n - 1) / 2;
            self.occ_depth = q - n;
        }
    }

    /// Fraction of batch events that took the short-circuit fast path
    /// (0 when no events were drained) — the single number callers
    /// should quote instead of re-deriving it from the raw counters.
    pub fn fast_path_fraction(&self) -> f64 {
        if self.events == 0 {
            return 0.0;
        }
        self.fast_path as f64 / self.events as f64
    }
}

/// Slots in the set-aware MD window of [`BatchCtx`]. Must be a power of
/// two no larger than any MD-cache set count it is used with (the slot
/// index is `line % min(MD_WINDOW_SLOTS, sets)`, so two lines of the
/// same cache set always collide in the window and a stale "line X is
/// at MRU of its set" entry can never survive a same-set access).
pub(crate) const MD_WINDOW_SLOTS: usize = 8;

/// Hot-path context for [`Fade::run_batch`].
///
/// Remembers what recent Metadata Read stages left at the MRU position
/// of the M-TLB and the MD cache, plus a decoded "plan" for the last
/// event ID, so the common warm single-shot case can skip the
/// associative lookups entirely. The MD side is a small *set-aware*
/// window rather than a single line: each slot records a line known to
/// sit at the MRU way of *its own* cache set, so streams that alternate
/// between lines in different sets (strides, producer/consumer pairs)
/// stay on the zero-search path. The shortcut is *exact*: it fires only
/// when the access provably hits at MRU of its set, where a real access
/// would bump the hit counter and leave the LRU order unchanged. Any
/// cycle-accurate `tick` invalidates the MRU fields.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct BatchCtx {
    /// Event ID the decoded plan below describes.
    pub(crate) plan_id: Option<EventId>,
    /// The plan's entry has no multi-shot continuation.
    pub(crate) plan_single_shot: bool,
    /// The plan's entry has a memory operand (Metadata Read stage does
    /// one M-TLB + one MD-cache access).
    pub(crate) plan_has_mem: bool,
    /// Application page number at the M-TLB's MRU slot.
    pub(crate) mru_page: Option<u32>,
    /// Metadata lines known to sit at the MRU way of their MD-cache
    /// set, keyed by `line % min(MD_WINDOW_SLOTS, sets)`.
    pub(crate) md_window: [Option<u64>; MD_WINDOW_SLOTS],
    /// Adaptive-gate state for the vectorized kernel: consecutive
    /// partially-retired blocks seen so far. Persists across batch
    /// calls so the gate can learn stream behaviour even when the
    /// driver submits small batches. Heuristic only — never affects
    /// results, just which (bit-exact) path runs.
    pub(crate) vec_poor: u32,
    /// Remaining block-sized chunks to route through the scalar loop
    /// before the vectorized kernel probes again.
    pub(crate) vec_cooloff: u32,
}

impl BatchCtx {
    /// Drops all MRU knowledge (cycle-accurate operation can reorder
    /// the TLB / MD-cache LRU state arbitrarily).
    #[inline]
    fn invalidate_mru(&mut self) {
        self.mru_page = None;
        self.md_window = [None; MD_WINDOW_SLOTS];
    }
}

/// A pending functional effect, applied when the in-flight event
/// finalizes.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Effect {
    /// Write register critical metadata.
    Reg(fade_isa::Reg, u8),
    /// Write memory critical metadata (via FSQ in non-blocking mode).
    Mem { md_addr: u64, bytes: u8, value: u64 },
}

#[derive(Clone, Debug, PartialEq)]
enum Resolution {
    Filtered,
    Dispatch {
        unfiltered: UnfilteredEvent,
        effect: Option<Effect>,
    },
}

#[derive(Clone, Debug, PartialEq)]
enum FaState {
    /// Ready to accept the next event.
    Idle,
    /// Processing an event for `cycles_left` more cycles.
    Processing {
        cycles_left: u32,
        resolution: Resolution,
    },
    /// Unfiltered queue full: retrying the dispatch each cycle.
    WaitUfq { resolution: Resolution },
    /// FSQ full: waiting for a handler completion to free an entry.
    WaitFsq { resolution: Resolution },
    /// Blocking mode: waiting for the handler of `token`.
    BlockedOnHandler { token: u64 },
}

/// The FADE accelerator.
///
/// `Clone` produces an independent accelerator with identical
/// functional *and* timing state (program, queues, cache/TLB contents,
/// counters) — what epoch checkpoints snapshot so a speculative epoch
/// resumes from the exact accelerator its predecessor would hand over.
#[derive(Clone)]
pub struct Fade {
    config: FadeConfig,
    pub(crate) program: FadeProgram,
    pub(crate) event_q: BoundedQueue<AppEvent>,
    pub(crate) ufq: BoundedQueue<UnfilteredEvent>,
    pub(crate) fsq: Fsq,
    pub(crate) md_cache: TagCache,
    md_l2: TagCache,
    pub(crate) tlb: MdTlb,
    suu: StackUpdateUnit,
    state: FaState,
    pub(crate) outstanding: Vec<u64>,
    next_token: u64,
    pub(crate) stats: FadeStats,
    pub(crate) batch: BatchCtx,
}

impl std::fmt::Debug for Fade {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fade")
            .field("mode", &self.config.mode)
            .field("event_q", &self.event_q.len())
            .field("ufq", &self.ufq.len())
            .field("fsq", &self.fsq.len())
            .field("state", &self.state)
            .finish()
    }
}

impl Fade {
    /// Creates an accelerator running `program`.
    ///
    /// # Panics
    ///
    /// Panics if the program fails [`FadeProgram::validate`]; programs
    /// must be validated before being loaded into hardware.
    pub fn new(config: FadeConfig, program: FadeProgram) -> Self {
        program
            .validate()
            .expect("FADE program failed structural validation");
        Fade {
            event_q: BoundedQueue::new(config.event_queue),
            ufq: BoundedQueue::new(config.unfiltered_queue),
            fsq: Fsq::new(config.fsq_entries),
            md_cache: TagCache::new(config.md_cache),
            md_l2: TagCache::new(TagCacheConfig::l2()),
            tlb: MdTlb::new(config.tlb_entries),
            suu: StackUpdateUnit::new(),
            state: FaState::Idle,
            outstanding: Vec::new(),
            next_token: 0,
            stats: FadeStats::default(),
            batch: BatchCtx::default(),
            config,
            program,
        }
    }

    /// Offers an event to the event queue (producer side).
    ///
    /// # Errors
    ///
    /// Returns the event back when the queue is full (backpressure: the
    /// application core must stall).
    pub fn enqueue(&mut self, ev: AppEvent) -> Result<(), AppEvent> {
        self.event_q.push(ev)
    }

    /// Free entries in the event queue.
    pub fn event_queue_free(&self) -> usize {
        self.event_q.free()
    }

    /// Current event-queue occupancy.
    pub fn event_queue_len(&self) -> usize {
        self.event_q.len()
    }

    /// Current unfiltered-queue occupancy.
    pub fn unfiltered_queue_len(&self) -> usize {
        self.ufq.len()
    }

    /// Pops the oldest unfiltered event (consumer side). The caller must
    /// later report [`Fade::handler_completed`] with the event's token.
    pub fn pop_unfiltered(&mut self) -> Option<UnfilteredEvent> {
        self.ufq.pop()
    }

    /// Reports completion of the software handler for `token`:
    /// releases the token's FSQ entries and, in blocking mode, resumes
    /// filtering.
    pub fn handler_completed(&mut self, token: u64) {
        self.outstanding.retain(|&t| t != token);
        self.fsq.retire(token);
        if self.state == (FaState::BlockedOnHandler { token }) {
            // Pay the metadata-handoff round trip before resuming.
            self.state = if self.config.blocking_resume_latency > 0 {
                FaState::Processing {
                    cycles_left: self.config.blocking_resume_latency,
                    resolution: Resolution::Filtered,
                }
            } else {
                FaState::Idle
            };
        }
    }

    /// Runtime invariant-register write (memory-mapped store), e.g. the
    /// AtomCheck monitor updating the current-thread signature on a
    /// thread switch.
    pub fn write_invariant(&mut self, id: InvId, value: u64) {
        self.program.invariants_mut().write(id, value);
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &FadeStats {
        &self.stats
    }

    /// MD cache hit/miss statistics.
    pub fn md_cache_stats(&self) -> CacheStats {
        self.md_cache.stats()
    }

    /// M-TLB hit/miss counts.
    pub fn tlb_counts(&self) -> (u64, u64) {
        (self.tlb.hits(), self.tlb.misses())
    }

    /// Stack-update unit line writes issued.
    pub fn suu_writes(&self) -> u64 {
        self.suu.writes_issued()
    }

    /// Tokens dispatched but not yet completed.
    pub fn outstanding_handlers(&self) -> usize {
        self.outstanding.len()
    }

    /// Returns `true` when the accelerator has nothing in flight: no
    /// queued events, no multi-cycle operation, and an idle SUU.
    /// (Dispatched-but-uncompleted handlers do not count; they belong
    /// to the consumer.)
    pub fn is_idle(&self) -> bool {
        self.event_q.is_empty() && self.state == FaState::Idle && !self.suu.busy()
    }

    /// Returns `true` when the accelerator sits at a batch boundary:
    /// nothing in flight ([`Fade::is_idle`]), an empty unfiltered
    /// queue, and no dispatched-but-uncompleted handlers. This is
    /// exactly the state [`Fade::run_batch`] requires on entry and
    /// guarantees on exit, so a cycle-accurate driver can check it
    /// before handing the event stream to the batched fast path and
    /// resume bit-exactly afterwards.
    pub fn quiesced(&self) -> bool {
        self.is_idle() && self.ufq.is_empty() && self.outstanding.is_empty()
    }

    /// Current FSQ occupancy.
    pub fn fsq_len(&self) -> usize {
        self.fsq.len()
    }

    /// The loaded program.
    pub fn program(&self) -> &FadeProgram {
        &self.program
    }

    /// The configuration.
    pub fn config(&self) -> &FadeConfig {
        &self.config
    }

    /// Advances the accelerator one cycle.
    pub fn tick(&mut self, st: &mut MetadataState) -> FadeTick {
        // Cycle-accurate operation can reorder the TLB / MD-cache LRU
        // state arbitrarily: drop the batch fast path's MRU knowledge.
        self.batch.invalidate_mru();
        let mut out = FadeTick::default();
        // The SUU owns the MD cache port while busy.
        if self.suu.busy() {
            self.suu.tick(&mut self.md_cache);
            self.stats.suu_busy_cycles += 1;
            return out;
        }
        match std::mem::replace(&mut self.state, FaState::Idle) {
            FaState::BlockedOnHandler { token } => {
                self.stats.blocking_stall_cycles += 1;
                self.state = FaState::BlockedOnHandler { token };
            }
            FaState::WaitUfq { resolution } => {
                if self.ufq.is_full() {
                    self.stats.ufq_full_stall_cycles += 1;
                    self.state = FaState::WaitUfq { resolution };
                } else {
                    self.finalize(resolution, st, &mut out);
                }
            }
            FaState::WaitFsq { resolution } => {
                if self.fsq.is_full() {
                    self.stats.fsq_full_stall_cycles += 1;
                    self.state = FaState::WaitFsq { resolution };
                } else {
                    self.finalize(resolution, st, &mut out);
                }
            }
            FaState::Processing {
                cycles_left,
                resolution,
            } => {
                self.stats.busy_cycles += 1;
                if cycles_left > 1 {
                    self.state = FaState::Processing {
                        cycles_left: cycles_left - 1,
                        resolution,
                    };
                } else {
                    self.finalize(resolution, st, &mut out);
                }
            }
            FaState::Idle => {
                self.start_next(st, &mut out);
            }
        }
        out
    }

    /// Drains a slice of events through the four-stage pipeline without
    /// per-event `enqueue`/`tick` round trips.
    ///
    /// Single-shot instruction events run the pipeline stages inline,
    /// skipping the event queue and the cycle state machine entirely:
    /// accesses provably at the MRU of the M-TLB and of their MD-cache
    /// set (a small set-aware window of recent lines) skip even the
    /// associative lookups, and every other single-shot event does the
    /// real lookups — warm events (no miss penalty) are the
    /// short-circuit fast path. Everything else — stack updates,
    /// high-level events, multi-shot chains — falls back to the
    /// cycle-accurate [`Fade::tick`]
    /// loop. Dispatched events are consumed immediately (their handlers
    /// complete the same cycle), which is the same contract as driving
    /// the accelerator per event with an always-ready consumer:
    /// [`FadeStats`], the metadata state, and every cache/TLB counter
    /// come out bit-identical to that reference execution.
    ///
    /// # Panics
    ///
    /// Panics if handlers dispatched *before* the batch have not been
    /// completed ([`Fade::handler_completed`]), since the batch's
    /// immediate-consumer semantics cannot retire foreign tokens.
    pub fn run_batch(&mut self, events: &[AppEvent], st: &mut MetadataState) -> BatchStats {
        self.run_batch_with(events, st, |_, _| {})
    }

    /// [`Fade::run_batch`], invoking `consumer` for every dispatched
    /// event in program order (after its critical metadata update and
    /// handler completion) so callers can apply software-handler
    /// functional effects — what the monitor core does when it pops the
    /// unfiltered queue.
    pub fn run_batch_with<F>(
        &mut self,
        events: &[AppEvent],
        st: &mut MetadataState,
        mut consumer: F,
    ) -> BatchStats
    where
        F: FnMut(UnfilteredEvent, &mut MetadataState),
    {
        assert!(
            self.outstanding.is_empty(),
            "run_batch requires every previously dispatched handler to be completed"
        );
        let mut out = BatchStats::default();
        // Settle any backlog the caller enqueued before the batch.
        if !self.is_idle() {
            self.settle_batch(st, &mut out, &mut consumer);
        }
        for ev in events {
            out.events += 1;
            match ev {
                AppEvent::Instr(iev) => self.batch_instr(iev, st, &mut out, &mut consumer),
                other => {
                    out.fallback += 1;
                    let mark = out.dispatched;
                    self.event_q
                        .push(*other)
                        .expect("event queue is drained between batch events");
                    self.settle_batch(st, &mut out, &mut consumer);
                    let d = out.dispatched - mark;
                    out.occ_event(d);
                }
            }
        }
        out
    }

    /// One instruction event of a batch: tier A (the inline single-shot
    /// pipeline, fast-path when its metadata structures are warm) when
    /// the decoded plan allows it, tier B (the full pipeline stages
    /// without queue churn) for multi-shot chains and unknown events.
    /// Also advances the occupancy integral by the event's dispatch
    /// count — every scalar instruction path (plain batches and the
    /// vectorized kernel's scalar lanes) funnels through here, which is
    /// what keeps the integral identical across kernels.
    pub(crate) fn batch_instr<F>(
        &mut self,
        ev: &InstrEvent,
        st: &mut MetadataState,
        out: &mut BatchStats,
        consumer: &mut F,
    ) where
        F: FnMut(UnfilteredEvent, &mut MetadataState),
    {
        let mark = out.dispatched;
        self.batch_instr_exec(ev, st, out, consumer);
        let d = out.dispatched - mark;
        out.occ_event(d);
    }

    fn batch_instr_exec<F>(
        &mut self,
        ev: &InstrEvent,
        st: &mut MetadataState,
        out: &mut BatchStats,
        consumer: &mut F,
    ) where
        F: FnMut(UnfilteredEvent, &mut MetadataState),
    {
        debug_assert!(self.is_idle() && self.ufq.is_empty() && self.fsq.is_empty());
        // Refresh the decoded plan when the stream changes event ID.
        if self.batch.plan_id != Some(ev.id) {
            let Some(e) = self.program.table().entry(ev.id) else {
                // No entry: resolve_instr's defensive path handles it.
                self.batch.plan_id = None;
                self.batch_instr_slow(ev, st, out, consumer);
                return;
            };
            self.batch.plan_id = Some(ev.id);
            self.batch.plan_single_shot = e.next_entry.is_none();
            self.batch.plan_has_mem = OperandSel::ALL
                .iter()
                .any(|&s| e.operand(s).valid && e.operand(s).mem);
            // The MRU fields describe the previous events' accesses and
            // stay valid across a plan change.
        }
        if !self.batch.plan_single_shot {
            self.batch_instr_slow(ev, st, out, consumer);
            return;
        }

        // ---- Tier A: the single-shot pipeline inline. The Metadata
        // Read stage runs first, through the zero-search MRU window
        // when the access provably hits at MRU of its structures, and
        // through the real associative lookups otherwise — bit-exact
        // with `resolve_instr`'s read either way (same hit/miss
        // counters, LRU motion, fills and stall cycles). Warm events
        // (no miss penalty) are the short-circuit fast path; cold ones
        // count as fallback but still skip the queue round trip.
        let mut penalty = 0u32;
        if self.batch.plan_has_mem {
            let md_addr = self.program.md_map().md_addr(ev.app_addr);
            let line = self.md_line(md_addr);
            let slot = self.md_window_slot(line);
            if self.batch.mru_page == Some(ev.app_addr.page())
                && self.batch.md_window[slot] == Some(line)
            {
                self.tlb.record_mru_hit(ev.app_addr);
                self.md_cache.record_mru_hit(md_addr);
            } else {
                if !self.tlb.access(ev.app_addr) {
                    penalty += self.config.tlb_miss_penalty;
                    self.stats.tlb_miss_stall_cycles += self.config.tlb_miss_penalty as u64;
                }
                if !self.md_cache.access(md_addr) {
                    let fill = if self.md_l2.access(md_addr) {
                        self.config.mem_lat.l2
                    } else {
                        self.config.mem_lat.dram
                    };
                    penalty += fill;
                    self.stats.md_miss_stall_cycles += fill as u64;
                }
                // Both structures now hold this access at MRU.
                self.batch.mru_page = Some(ev.app_addr.page());
                self.batch.md_window[slot] = Some(line);
            }
        }
        if penalty == 0 {
            out.fast_path += 1;
        } else {
            out.fallback += 1;
        }
        self.stats.instr_events += 1;
        self.stats.shots += 1;
        self.stats.busy_cycles += 1 + penalty as u64;
        let entry = self.program.table().entry(ev.id).expect("plan implies an entry");
        let ops = self.fetch_operands(entry, ev, st);
        let d = evaluate_shot(entry, &ops, self.program.invariants());
        if d.condition_holds && !entry.partial {
            self.stats.filtered += 1;
            return;
        }
        // Unfiltered (or partial hit): same dispatch machinery as the
        // pipeline; the UFQ and FSQ are empty, so finalize cannot stall.
        // The dispatch's metadata write (if any) fills the same line the
        // read just touched, so the MD window stays exact.
        let entry = *entry;
        let resolution = self.dispatch_resolution(ev, &entry, d.condition_holds, st);
        let mut tk = FadeTick::default();
        self.finalize(resolution, st, &mut tk);
        debug_assert!(tk.dispatched.is_some(), "empty UFQ/FSQ cannot stall");
        self.drain_dispatched(st, out, consumer);
        self.settle_batch(st, out, consumer); // blocking-mode resume
    }

    /// Tier B: the full pipeline stages for one instruction event,
    /// still skipping the event-queue round trip.
    fn batch_instr_slow<F>(
        &mut self,
        ev: &InstrEvent,
        st: &mut MetadataState,
        out: &mut BatchStats,
        consumer: &mut F,
    ) where
        F: FnMut(UnfilteredEvent, &mut MetadataState),
    {
        out.fallback += 1;
        let (resolution, cycles) = self.resolve_instr(ev, st);
        self.stats.busy_cycles += cycles as u64;
        // Either way the event's Metadata Read (and, on dispatch, the
        // metadata write-fill of the same line) left its page and line
        // at MRU: warm the tier-A context.
        if self.batch.plan_id == Some(ev.id) && self.batch.plan_has_mem {
            self.batch.mru_page = Some(ev.app_addr.page());
            let line = self.md_line(self.program.md_map().md_addr(ev.app_addr));
            self.batch.md_window[self.md_window_slot(line)] = Some(line);
        }
        if let dispatch @ Resolution::Dispatch { .. } = resolution {
            let mut tk = FadeTick::default();
            self.finalize(dispatch, st, &mut tk);
            debug_assert!(tk.dispatched.is_some(), "empty UFQ/FSQ cannot stall");
            self.drain_dispatched(st, out, consumer);
            self.settle_batch(st, out, consumer);
        }
    }

    /// The MD-cache line a metadata address falls in — the same line
    /// indexing [`TagCache`] applies internally, kept in one place so
    /// the tier-A MRU check can never drift from the cache geometry.
    #[inline]
    pub(crate) fn md_line(&self, md_addr: u64) -> u64 {
        md_addr >> self.md_cache.config().line_shift()
    }

    /// The MD-window slot a cache line maps to. The slot count divides
    /// the (power-of-two) set count, so lines of the same cache set
    /// always share a slot and a same-set access can never leave a
    /// stale MRU claim behind in another slot.
    #[inline]
    pub(crate) fn md_window_slot(&self, line: u64) -> usize {
        let sets = self.md_cache.set_count() as u64;
        (line & (sets.min(MD_WINDOW_SLOTS as u64) - 1)) as usize
    }

    /// Pops every dispatched event, completes its handler and hands it
    /// to the batch consumer.
    fn drain_dispatched<F>(
        &mut self,
        st: &mut MetadataState,
        out: &mut BatchStats,
        consumer: &mut F,
    ) where
        F: FnMut(UnfilteredEvent, &mut MetadataState),
    {
        while let Some(uf) = self.ufq.pop() {
            self.handler_completed(uf.token);
            out.dispatched += 1;
            consumer(uf, st);
        }
    }

    /// Runs the cycle-accurate loop (with an always-ready consumer)
    /// until the accelerator quiesces.
    pub(crate) fn settle_batch<F>(&mut self, st: &mut MetadataState, out: &mut BatchStats, consumer: &mut F)
    where
        F: FnMut(UnfilteredEvent, &mut MetadataState),
    {
        let mut guard = 0u64;
        while !self.is_idle() {
            self.tick(st);
            self.drain_dispatched(st, out, consumer);
            guard += 1;
            assert!(guard < 100_000_000, "run_batch failed to quiesce");
        }
        self.drain_dispatched(st, out, consumer);
    }

    /// Tries to start processing the event at the queue head.
    fn start_next(&mut self, st: &mut MetadataState, out: &mut FadeTick) {
        let Some(head) = self.event_q.front() else {
            self.stats.idle_cycles += 1;
            return;
        };
        match *head {
            AppEvent::StackUpdate(ev) => {
                // Stack updates change metadata state: pending unfiltered
                // events may reference frame metadata, so the unfiltered
                // queue must drain first (Section 5.2).
                if !self.ufq.is_empty() || !self.outstanding.is_empty() {
                    self.stats.drain_stall_cycles += 1;
                    return;
                }
                self.event_q.pop();
                if self.program.suu().is_some() {
                    self.start_stack_update(&ev, st);
                } else {
                    // SUU disabled (ablation): the software monitor
                    // performs the bulk update.
                    self.stats.stack_updates += 1;
                    let token = self.alloc_token();
                    let resolution = Resolution::Dispatch {
                        unfiltered: UnfilteredEvent {
                            event: AppEvent::StackUpdate(ev),
                            handler: HandlerPc::default(),
                            partial_hit: false,
                            token,
                        },
                        effect: None,
                    };
                    self.stats.busy_cycles += 1;
                    self.finalize(resolution, st, out);
                }
            }
            AppEvent::HighLevel(ev) => {
                // Malloc/free/taint-source handlers bulk-update
                // metadata, superseding any still-pending critical
                // update: like stack updates (Section 5.2), they must
                // wait for the unfiltered queue to drain so no stale
                // FSQ entry is forwarded over their writes.
                let bulk = !matches!(ev, HighLevelEvent::ThreadSwitch { .. });
                if bulk && (!self.ufq.is_empty() || !self.outstanding.is_empty()) {
                    self.stats.drain_stall_cycles += 1;
                    return;
                }
                self.event_q.pop();
                self.stats.busy_cycles += 1;
                let token = self.alloc_token();
                let resolution = Resolution::Dispatch {
                    unfiltered: UnfilteredEvent {
                        event: AppEvent::HighLevel(ev),
                        handler: HandlerPc::default(),
                        partial_hit: false,
                        token,
                    },
                    effect: None,
                };
                self.finalize(resolution, st, out);
            }
            AppEvent::Instr(ev) => {
                self.event_q.pop();
                self.stats.busy_cycles += 1;
                let (resolution, cycles) = self.resolve_instr(&ev, st);
                if cycles > 1 {
                    self.state = FaState::Processing {
                        cycles_left: cycles - 1,
                        resolution,
                    };
                } else {
                    self.finalize(resolution, st, out);
                }
            }
        }
    }

    fn start_stack_update(&mut self, ev: &StackUpdateEvent, st: &mut MetadataState) {
        self.stats.stack_updates += 1;
        let Some(suu_cfg) = self.program.suu() else {
            return;
        };
        let map = self.program.md_map();
        // Split borrows so the SUU reads the invariant file in place —
        // no per-update clone of the register file on the hot path.
        let Fade { suu, program, .. } = self;
        suu.start(ev, suu_cfg.call_inv, suu_cfg.ret_inv, program.invariants(), &map, st);
    }

    /// Runs the filtering pipeline for an instruction event, returning
    /// the resolution and the cycles of filtering-unit occupancy.
    fn resolve_instr(&mut self, ev: &InstrEvent, st: &MetadataState) -> (Resolution, u32) {
        self.stats.instr_events += 1;
        let Some(first) = self.program.table().entry(ev.id).copied() else {
            // The producer only enqueues monitored events; an event
            // without an entry is a producer/program mismatch. Treat it
            // as filtered so software is never invoked spuriously.
            debug_assert!(false, "event {:?} has no event-table entry", ev.id);
            self.stats.filtered += 1;
            return (Resolution::Filtered, 1);
        };

        // Metadata Read stage: one MD cache (+TLB) access per event with
        // a memory operand.
        let mut penalty = 0u32;
        let has_mem = OperandSel::ALL
            .iter()
            .any(|&s| first.operand(s).valid && first.operand(s).mem);
        if has_mem {
            let md_addr = self.program.md_map().md_addr(ev.app_addr);
            if !self.tlb.access(ev.app_addr) {
                penalty += self.config.tlb_miss_penalty;
                self.stats.tlb_miss_stall_cycles += self.config.tlb_miss_penalty as u64;
            }
            if !self.md_cache.access(md_addr) {
                let fill = if self.md_l2.access(md_addr) {
                    self.config.mem_lat.l2
                } else {
                    self.config.mem_lat.dram
                };
                penalty += fill;
                self.stats.md_miss_stall_cycles += fill as u64;
            }
        }

        // Filter stage: walk the (possibly multi-shot) chain.
        let mut chain = ShotChain::new();
        let mut shots = 0u32;
        let mut entry = first;
        let mut holds;
        loop {
            shots += 1;
            self.stats.shots += 1;
            let ops = self.fetch_operands(&entry, ev, st);
            let d = evaluate_shot(&entry, &ops, self.program.invariants());
            holds = chain.step(entry.ms, d.condition_holds);
            match entry.next_entry {
                Some(next) => {
                    entry = *self
                        .program
                        .table()
                        .entry(next)
                        .expect("validated chains cannot dangle");
                }
                None => break,
            }
        }

        let cycles = shots + penalty;
        let primary = first;
        if holds && !primary.partial {
            self.stats.filtered += 1;
            return (Resolution::Filtered, cycles);
        }
        (self.dispatch_resolution(ev, &primary, holds, st), cycles)
    }

    /// Builds the Dispatch resolution for an unfiltered (or partial-hit)
    /// instruction event: handler selection plus the non-blocking
    /// critical-metadata update from the primary entry's rule. Shared by
    /// the cycle-accurate pipeline and the batched fast path.
    fn dispatch_resolution(
        &mut self,
        ev: &InstrEvent,
        primary: &EventTableEntry,
        holds: bool,
        st: &MetadataState,
    ) -> Resolution {
        let token = self.alloc_token();
        let partial_hit = holds && primary.partial;
        let handler = if partial_hit {
            primary.partial_handler_pc
        } else {
            primary.handler_pc
        };
        let effect = primary.nb.and_then(|nb| {
            let ops = self.fetch_operands(primary, ev, st);
            nb.evaluate(&ops, self.program.invariants()).and_then(|v| {
                let d_rule = primary.operand(OperandSel::D);
                if !d_rule.valid {
                    return None;
                }
                if d_rule.mem {
                    let md_addr = self.program.md_map().md_addr(ev.app_addr);
                    Some(Effect::Mem {
                        md_addr,
                        bytes: d_rule.md_bytes,
                        value: v,
                    })
                } else {
                    Some(Effect::Reg(ev.dest, v as u8))
                }
            })
        });
        Resolution::Dispatch {
            unfiltered: UnfilteredEvent {
                event: AppEvent::Instr(*ev),
                handler,
                partial_hit,
                token,
            },
            effect,
        }
    }

    /// Metadata Read stage: fetch the three operands' metadata, masked,
    /// observing the FSQ before the MD cache (non-blocking forwarding).
    pub(crate) fn fetch_operands(
        &self,
        entry: &EventTableEntry,
        ev: &InstrEvent,
        st: &MetadataState,
    ) -> OperandMeta {
        let read = |sel: OperandSel| -> u64 {
            let rule = entry.operand(sel);
            if !rule.valid {
                return 0;
            }
            let raw = if rule.mem {
                let md_addr = self.program.md_map().md_addr(ev.app_addr);
                match self.fsq.search(md_addr, rule.md_bytes) {
                    Some(v) => v,
                    None => st.mem.read_bytes(md_addr, rule.md_bytes as usize),
                }
            } else {
                let reg = match sel {
                    OperandSel::S1 => ev.src1,
                    OperandSel::S2 => ev.src2,
                    OperandSel::D => ev.dest,
                };
                st.regs.read(reg) as u64
            };
            raw & rule.mask
        };
        OperandMeta {
            s1: read(OperandSel::S1),
            s2: read(OperandSel::S2),
            d: read(OperandSel::D),
        }
    }

    /// Commits a resolution: applies effects (Metadata Write stage),
    /// pushes to the unfiltered queue, and transitions state.
    fn finalize(&mut self, resolution: Resolution, st: &mut MetadataState, out: &mut FadeTick) {
        match resolution {
            Resolution::Filtered => {
                self.state = FaState::Idle;
            }
            Resolution::Dispatch { unfiltered, effect } => {
                // FSQ allocation first: a full FSQ stalls the pipeline.
                if let Some(Effect::Mem { .. }) = effect {
                    if self.config.mode == FilterMode::NonBlocking && self.fsq.is_full() {
                        self.stats.fsq_full_stall_cycles += 1;
                        self.state = FaState::WaitFsq {
                            resolution: Resolution::Dispatch { unfiltered, effect },
                        };
                        return;
                    }
                }
                if self.ufq.is_full() {
                    self.stats.ufq_full_stall_cycles += 1;
                    self.state = FaState::WaitUfq {
                        resolution: Resolution::Dispatch { unfiltered, effect },
                    };
                    return;
                }
                // Metadata Write stage: commit the critical update.
                match effect {
                    Some(Effect::Reg(reg, v)) => st.regs.write(reg, v),
                    Some(Effect::Mem {
                        md_addr,
                        bytes,
                        value,
                    }) => {
                        if self.config.mode == FilterMode::NonBlocking {
                            self.fsq
                                .push(md_addr, bytes, value, unfiltered.token)
                                .expect("FSQ fullness checked above");
                        }
                        st.mem.write_bytes(md_addr, bytes as usize, value);
                        self.md_cache.fill(md_addr);
                    }
                    None => {}
                }
                // Classify for statistics.
                match unfiltered.event {
                    AppEvent::Instr(_) => {
                        if unfiltered.partial_hit {
                            self.stats.partial_hits += 1;
                        } else {
                            self.stats.unfiltered_instr += 1;
                        }
                    }
                    AppEvent::HighLevel(_) => {
                        self.stats.high_level += 1;
                    }
                    AppEvent::StackUpdate(_) => {}
                }
                let token = unfiltered.token;
                self.outstanding.push(token);
                out.dispatched = Some(unfiltered);
                self.ufq
                    .push(unfiltered)
                    .expect("UFQ fullness checked above");
                self.state = match self.config.mode {
                    FilterMode::Blocking => FaState::BlockedOnHandler { token },
                    FilterMode::NonBlocking => FaState::Idle,
                };
            }
        }
    }

    fn alloc_token(&mut self) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        t
    }
}
