//! The event table: per-event filtering rules (Figure 6(b)).
//!
//! Each of the 128 entries is 96 bits in hardware and describes, for one
//! event ID: which operands participate and how their metadata is
//! fetched (valid/mem bits, MD bytes, mask), whether the event is a
//! clean check (CC bit + per-operand INV ids) or a redundant-update
//! check (RU field), multi-shot chaining (MS bit + next entry), the
//! partial bit (P), the software handler PC, and the non-blocking
//! update rule (Non-Block./INV id field, Section 5.2).

use std::fmt;

use fade_isa::{EventId, EVENT_TABLE_ENTRIES};

use crate::invrf::InvId;
use crate::update_logic::NbUpdate;

/// Which event operand a rule refers to (the `s1`/`s2`/`d` columns of
/// Figure 6(b)).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OperandSel {
    /// First source operand.
    S1,
    /// Second source operand.
    S2,
    /// Destination operand.
    D,
}

impl OperandSel {
    /// All operand selectors in field order.
    pub const ALL: [OperandSel; 3] = [OperandSel::S1, OperandSel::S2, OperandSel::D];
}

/// Per-operand metadata-access rule: the valid/mem bits, evaluated MD
/// byte count, extraction mask, and (for clean checks) the invariant
/// register to compare against.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OperandRule {
    /// The operand participates in this entry's evaluation.
    pub valid: bool,
    /// The operand is the memory operand (metadata fetched through the
    /// MD cache); otherwise it is a register (metadata from the MD RF).
    pub mem: bool,
    /// Number of metadata bytes evaluated (1..=8).
    pub md_bytes: u8,
    /// Mask applied to the fetched metadata before comparison.
    pub mask: u64,
    /// Invariant register compared against on a clean check.
    pub inv_id: Option<InvId>,
}

impl OperandRule {
    /// An invalid (non-participating) operand.
    pub const INVALID: OperandRule = OperandRule {
        valid: false,
        mem: false,
        md_bytes: 0,
        mask: 0,
        inv_id: None,
    };

    /// A register operand rule with a clean-check invariant.
    pub fn reg_operand(mask: u64, inv: InvId) -> Self {
        OperandRule {
            valid: true,
            mem: false,
            md_bytes: 1,
            mask,
            inv_id: Some(inv),
        }
    }

    /// A register operand rule without an invariant (used by RU entries).
    pub fn reg_plain(mask: u64) -> Self {
        OperandRule {
            valid: true,
            mem: false,
            md_bytes: 1,
            mask,
            inv_id: None,
        }
    }

    /// A memory operand rule with a clean-check invariant.
    pub fn mem_operand(md_bytes: u8, mask: u64, inv: InvId) -> Self {
        OperandRule {
            valid: true,
            mem: true,
            md_bytes,
            mask,
            inv_id: Some(inv),
        }
    }

    /// A memory operand rule without an invariant (used by RU entries).
    pub fn mem_plain(md_bytes: u8, mask: u64) -> Self {
        OperandRule {
            valid: true,
            mem: true,
            md_bytes,
            mask,
            inv_id: None,
        }
    }
}

/// How a redundant-update entry composes the source metadata before
/// comparing with the destination metadata (the RU field encodes three
/// options, Section 4.1 Stage 1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RuCompose {
    /// Single source: compare `s1` directly with `d`.
    Direct,
    /// Two sources composed with bitwise OR.
    Or,
    /// Two sources composed with bitwise AND.
    And,
}

/// The check kind of an event-table entry: clean check (CC bit) or
/// redundant update (RU field). Exactly one applies per entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FilterKind {
    /// Clean check: every valid operand's masked metadata must equal its
    /// invariant register.
    CleanCheck,
    /// Redundant update: composed source metadata must equal the
    /// destination metadata.
    RedundantUpdate(RuCompose),
}

/// PC of a software handler in the monitor's address space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct HandlerPc(u32);

impl HandlerPc {
    /// Creates a handler PC.
    #[inline]
    pub const fn new(pc: u32) -> Self {
        HandlerPc(pc)
    }

    /// Raw PC value.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for HandlerPc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HandlerPc({:#x})", self.0)
    }
}

impl fmt::Display for HandlerPc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

/// One event-table entry (Figure 6(b); 96 bits in hardware).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct EventTableEntry {
    /// Metadata-access rules for `s1`, `s2`, `d` (in that order).
    pub operands: [OperandRule; 3],
    /// Clean check or redundant update.
    pub kind: FilterKind,
    /// Multi-shot bit: AND the previous shot's outcome into this one.
    pub ms: bool,
    /// Pointer to the next entry of a multi-shot chain.
    pub next_entry: Option<EventId>,
    /// Partial bit (P): a passing check selects the short handler
    /// instead of filtering outright.
    pub partial: bool,
    /// Software handler dispatched when the event is not filtered.
    pub handler_pc: HandlerPc,
    /// Short handler dispatched when a partial check passes.
    pub partial_handler_pc: HandlerPc,
    /// Non-blocking critical-metadata update rule for unfiltered events.
    pub nb: Option<NbUpdate>,
}

impl EventTableEntry {
    /// Creates a clean-check entry from per-operand rules
    /// (`[s1, s2, d]`; `None` marks a non-participating operand).
    pub fn clean_check(rules: [Option<OperandRule>; 3]) -> Self {
        EventTableEntry {
            operands: rules.map(|r| r.unwrap_or(OperandRule::INVALID)),
            kind: FilterKind::CleanCheck,
            ms: false,
            next_entry: None,
            partial: false,
            handler_pc: HandlerPc::default(),
            partial_handler_pc: HandlerPc::default(),
            nb: None,
        }
    }

    /// Creates a redundant-update entry.
    pub fn redundant_update(rules: [Option<OperandRule>; 3], compose: RuCompose) -> Self {
        EventTableEntry {
            operands: rules.map(|r| r.unwrap_or(OperandRule::INVALID)),
            kind: FilterKind::RedundantUpdate(compose),
            ms: false,
            next_entry: None,
            partial: false,
            handler_pc: HandlerPc::default(),
            partial_handler_pc: HandlerPc::default(),
            nb: None,
        }
    }

    /// Sets the unfiltered-event handler PC.
    pub fn with_handler(mut self, pc: HandlerPc) -> Self {
        self.handler_pc = pc;
        self
    }

    /// Marks the entry partial and sets the short (check-passed) handler.
    pub fn with_partial(mut self, short_handler: HandlerPc) -> Self {
        self.partial = true;
        self.partial_handler_pc = short_handler;
        self
    }

    /// Chains this entry to a continuation entry (multi-shot).
    pub fn with_next(mut self, next: EventId) -> Self {
        self.next_entry = Some(next);
        self
    }

    /// Sets the multi-shot bit (combine with the previous shot outcome).
    pub fn with_ms(mut self) -> Self {
        self.ms = true;
        self
    }

    /// Attaches a non-blocking critical-metadata update rule.
    pub fn with_nb(mut self, nb: NbUpdate) -> Self {
        self.nb = Some(nb);
        self
    }

    /// The rule for an operand selector.
    #[inline]
    pub fn operand(&self, sel: OperandSel) -> &OperandRule {
        match sel {
            OperandSel::S1 => &self.operands[0],
            OperandSel::S2 => &self.operands[1],
            OperandSel::D => &self.operands[2],
        }
    }

    /// Number of two-operand comparator blocks this entry needs in the
    /// Filter stage. The filter logic provides three (f1, f2, f3 in
    /// Figure 7); `FadeProgram::validate` enforces the bound.
    pub fn comparators_needed(&self) -> usize {
        match self.kind {
            FilterKind::CleanCheck => self
                .operands
                .iter()
                .filter(|r| r.valid && r.inv_id.is_some())
                .count(),
            // Composition plus the final comparison fits one block pair:
            // compose uses the shared OR/AND stage, compare uses one
            // comparator.
            FilterKind::RedundantUpdate(_) => 1,
        }
    }
}

/// The 128-entry event table.
#[derive(Clone, Debug)]
pub struct EventTable {
    entries: Box<[Option<EventTableEntry>; EVENT_TABLE_ENTRIES]>,
}

impl EventTable {
    /// Creates an empty table: every event is unmonitored.
    pub fn new() -> Self {
        EventTable {
            entries: Box::new([None; EVENT_TABLE_ENTRIES]),
        }
    }

    /// Looks up the entry for an event ID.
    #[inline]
    pub fn entry(&self, id: EventId) -> Option<&EventTableEntry> {
        self.entries[id.index()].as_ref()
    }

    /// Installs an entry (memory-mapped programming).
    pub fn set(&mut self, id: EventId, entry: EventTableEntry) {
        self.entries[id.index()] = Some(entry);
    }

    /// Removes an entry.
    pub fn clear(&mut self, id: EventId) {
        self.entries[id.index()] = None;
    }

    /// Number of programmed entries.
    pub fn len(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Returns `true` if no entries are programmed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over `(id, entry)` pairs of programmed entries.
    pub fn iter(&self) -> impl Iterator<Item = (EventId, &EventTableEntry)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|e| (EventId::new(i as u8), e)))
    }
}

impl Default for EventTable {
    fn default() -> Self {
        EventTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fade_isa::event_ids;

    fn cc_entry() -> EventTableEntry {
        EventTableEntry::clean_check([
            Some(OperandRule::mem_operand(1, 0xff, InvId::new(0))),
            None,
            Some(OperandRule::reg_operand(0xff, InvId::new(0))),
        ])
    }

    #[test]
    fn empty_table_has_no_entries() {
        let t = EventTable::new();
        assert!(t.is_empty());
        assert!(t.entry(event_ids::LOAD).is_none());
    }

    #[test]
    fn set_and_lookup() {
        let mut t = EventTable::new();
        t.set(event_ids::LOAD, cc_entry());
        assert_eq!(t.len(), 1);
        let e = t.entry(event_ids::LOAD).unwrap();
        assert!(e.operand(OperandSel::S1).valid);
        assert!(e.operand(OperandSel::S1).mem);
        assert!(!e.operand(OperandSel::S2).valid);
        t.clear(event_ids::LOAD);
        assert!(t.is_empty());
    }

    #[test]
    fn comparator_count_clean_check() {
        assert_eq!(cc_entry().comparators_needed(), 2);
        let three = EventTableEntry::clean_check([
            Some(OperandRule::reg_operand(0xff, InvId::new(0))),
            Some(OperandRule::reg_operand(0xff, InvId::new(1))),
            Some(OperandRule::reg_operand(0xff, InvId::new(2))),
        ]);
        assert_eq!(three.comparators_needed(), 3);
    }

    #[test]
    fn comparator_count_redundant_update() {
        let ru = EventTableEntry::redundant_update(
            [
                Some(OperandRule::reg_plain(0xff)),
                Some(OperandRule::reg_plain(0xff)),
                Some(OperandRule::reg_plain(0xff)),
            ],
            RuCompose::Or,
        );
        assert_eq!(ru.comparators_needed(), 1);
    }

    #[test]
    fn builder_chain() {
        let e = cc_entry()
            .with_handler(HandlerPc::new(0x40))
            .with_partial(HandlerPc::new(0x80))
            .with_next(EventId::new(64))
            .with_ms();
        assert_eq!(e.handler_pc, HandlerPc::new(0x40));
        assert!(e.partial);
        assert_eq!(e.partial_handler_pc, HandlerPc::new(0x80));
        assert_eq!(e.next_entry, Some(EventId::new(64)));
        assert!(e.ms);
    }

    #[test]
    fn iter_visits_programmed_entries() {
        let mut t = EventTable::new();
        t.set(event_ids::LOAD, cc_entry());
        t.set(event_ids::STORE, cc_entry());
        let ids: Vec<_> = t.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![event_ids::LOAD, event_ids::STORE]);
    }
}
