//! The Invariant Register File (INV RF).
//!
//! Holds the monitor-specific invariant values that clean checks compare
//! metadata against, and the constants that the stack-update unit and the
//! non-blocking update logic write (Section 4.1). Memory-mapped and
//! programmed per application.

use std::fmt;

/// Number of invariant registers. The event-table format of Figure 6(b)
/// allots a 5-bit INV id per operand, i.e. 32 registers.
pub const INV_REGS: usize = 32;

/// Index of an invariant register (5 bits).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InvId(u8);

impl InvId {
    /// Creates an invariant register index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= INV_REGS`.
    #[inline]
    pub const fn new(index: u8) -> Self {
        assert!((index as usize) < INV_REGS, "invariant id out of range");
        InvId(index)
    }

    /// Returns the register index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for InvId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "InvId({})", self.0)
    }
}

impl fmt::Display for InvId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inv{}", self.0)
    }
}

/// The invariant register file: 32 × 64-bit values.
///
/// # Example
///
/// ```
/// use fade::{InvId, InvRf};
/// let mut rf = InvRf::new();
/// rf.write(InvId::new(2), 0x0101_0101);
/// assert_eq!(rf.read(InvId::new(2)), 0x0101_0101);
/// ```
#[derive(Clone, Debug)]
pub struct InvRf {
    regs: [u64; INV_REGS],
}

impl InvRf {
    /// Creates a zeroed invariant register file.
    pub fn new() -> Self {
        InvRf {
            regs: [0; INV_REGS],
        }
    }

    /// Reads an invariant value.
    #[inline]
    pub fn read(&self, id: InvId) -> u64 {
        self.regs[id.index()]
    }

    /// Writes an invariant value.
    #[inline]
    pub fn write(&mut self, id: InvId, value: u64) {
        self.regs[id.index()] = value;
    }
}

impl Default for InvRf {
    fn default() -> Self {
        InvRf::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_zeroed() {
        let rf = InvRf::new();
        for i in 0..INV_REGS as u8 {
            assert_eq!(rf.read(InvId::new(i)), 0);
        }
    }

    #[test]
    fn write_read_round_trip() {
        let mut rf = InvRf::new();
        rf.write(InvId::new(31), u64::MAX);
        assert_eq!(rf.read(InvId::new(31)), u64::MAX);
        assert_eq!(rf.read(InvId::new(30)), 0);
    }

    #[test]
    #[should_panic(expected = "invariant id out of range")]
    fn rejects_out_of_range() {
        let _ = InvId::new(32);
    }
}
