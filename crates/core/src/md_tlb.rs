//! The metadata TLB (M-TLB).
//!
//! The TLB of the MD cache holds translations from a virtual application
//! page to the physical page containing the associated memory metadata
//! (Section 4.1, after LBA's M-TLB \[2\]). Misses are serviced in software.

use fade_isa::VirtAddr;
use fade_shadow::MetadataMap;

/// A fully-associative, LRU, 16-entry (by default) M-TLB.
///
/// Tag-only model: the actual translation is the deterministic
/// [`MetadataMap`]; the TLB decides whether the translation was cached
/// or needs the software fill handler.
#[derive(Clone, Debug)]
pub struct MdTlb {
    entries: Vec<u32>, // app page numbers, MRU first
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl MdTlb {
    /// The paper's configuration: 16 entries (Section 6).
    pub const DEFAULT_ENTRIES: usize = 16;

    /// Creates an empty M-TLB.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB needs at least one entry");
        MdTlb {
            entries: Vec::with_capacity(capacity),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Translates the application address's page; returns `true` on hit.
    /// On a miss the translation is installed (after the modelled
    /// software fill).
    pub fn access(&mut self, app: VirtAddr) -> bool {
        let page = app.page();
        if let Some(pos) = self.entries.iter().position(|&p| p == page) {
            let p = self.entries.remove(pos);
            self.entries.insert(0, p);
            self.hits += 1;
            true
        } else {
            if self.entries.len() == self.capacity {
                self.entries.pop();
            }
            self.entries.insert(0, page);
            self.misses += 1;
            false
        }
    }

    /// Records a hit for an address whose page is known to sit at the
    /// MRU slot, skipping the associative search — the warm-path
    /// shortcut of the batched filtering loop. Equivalent to
    /// [`MdTlb::access`] for that case: the hit counter advances and
    /// the recency order (the page is already in front) is unchanged.
    #[inline]
    pub fn record_mru_hit(&mut self, app: VirtAddr) {
        debug_assert_eq!(self.entries.first(), Some(&app.page()));
        let _ = app;
        self.hits += 1;
    }

    /// Records `n` hits for addresses known to sit at the MRU slot —
    /// the bulk-retire form of [`MdTlb::record_mru_hit`] (recency order
    /// is already correct, so only the counter moves).
    #[inline]
    pub fn record_mru_hits(&mut self, n: u64) {
        self.hits += n;
    }

    /// The metadata frame an application page maps to (the translation
    /// the hardware would return; delegated to the functional map).
    pub fn translate(map: &MetadataMap, app: VirtAddr) -> u64 {
        map.md_page_of_app_page(app.page())
    }

    /// TLB hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// TLB misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Invalidates all entries.
    pub fn flush(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut tlb = MdTlb::new(4);
        assert!(!tlb.access(VirtAddr::new(0x1000)));
        assert!(tlb.access(VirtAddr::new(0x1abc))); // same page
        assert_eq!(tlb.hits(), 1);
        assert_eq!(tlb.misses(), 1);
    }

    #[test]
    fn lru_eviction() {
        let mut tlb = MdTlb::new(2);
        tlb.access(VirtAddr::new(0x1000)); // page 1
        tlb.access(VirtAddr::new(0x2000)); // page 2
        tlb.access(VirtAddr::new(0x1000)); // page 1 MRU
        tlb.access(VirtAddr::new(0x3000)); // evicts page 2
        assert!(tlb.access(VirtAddr::new(0x1000)));
        assert!(!tlb.access(VirtAddr::new(0x2000)));
    }

    #[test]
    fn translation_delegates_to_map() {
        let map = MetadataMap::per_word();
        let t0 = MdTlb::translate(&map, VirtAddr::new(0));
        let t4 = MdTlb::translate(&map, VirtAddr::new(4 << 12));
        assert_eq!(t4, t0 + 1, "4 app pages per md page at 4:1 packing");
    }

    #[test]
    fn flush_clears() {
        let mut tlb = MdTlb::new(4);
        tlb.access(VirtAddr::new(0x1000));
        tlb.flush();
        assert!(!tlb.access(VirtAddr::new(0x1000)));
    }
}
