//! Set-associative tag-array cache model.
//!
//! Used for the 4 KB, 2-way, 64 B-line metadata cache of the Filtering
//! Unit (Section 6) and for the metadata traffic's slice of the shared
//! L2. The model is *tag-only*: data always live in the functional
//! [`fade_shadow::ShadowMemory`]; the cache decides hit/miss timing.
//! This keeps the functional metadata stream identical whether or not
//! the cache is present (DESIGN.md invariant 7).

/// Geometry of a tag cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TagCacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
}

impl TagCacheConfig {
    /// The paper's MD cache: 4 KB, 2-way, 64 B lines, 1-cycle access.
    pub const fn md_cache() -> Self {
        TagCacheConfig {
            size_bytes: 4096,
            ways: 2,
            line_bytes: 64,
        }
    }

    /// The Table 1 shared L2: 2 MB, 16-way, 64 B lines.
    pub const fn l2() -> Self {
        TagCacheConfig {
            size_bytes: 2 * 1024 * 1024,
            ways: 16,
            line_bytes: 64,
        }
    }

    /// Number of sets.
    pub const fn sets(&self) -> u32 {
        self.size_bytes / (self.ways * self.line_bytes)
    }

    /// `log2(line_bytes)` — the address-to-line shift. Valid because
    /// [`TagCache::new`] rejects non-power-of-two line sizes.
    pub const fn line_shift(&self) -> u32 {
        self.line_bytes.trailing_zeros()
    }
}

/// Hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio in `[0, 1]` (1 if no accesses).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// An LRU set-associative tag array.
///
/// # Example
///
/// ```
/// use fade::{TagCache, TagCacheConfig};
/// let mut c = TagCache::new(TagCacheConfig::md_cache());
/// assert!(!c.access(0x1000)); // cold miss (line filled)
/// assert!(c.access(0x1004));  // same 64B line: hit
/// ```
#[derive(Clone, Debug)]
pub struct TagCache {
    config: TagCacheConfig,
    // sets[set] = ways ordered most-recently-used first.
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
}

impl TagCache {
    /// Creates an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets or ways, or a
    /// non-power-of-two line size).
    pub fn new(config: TagCacheConfig) -> Self {
        assert!(config.ways > 0, "cache needs at least one way");
        assert!(
            config.line_bytes.is_power_of_two() && config.line_bytes >= 8,
            "line size must be a power of two >= 8"
        );
        let sets = config.sets();
        assert!(sets > 0 && sets.is_power_of_two(), "set count must be a power of two");
        TagCache {
            config,
            sets: vec![Vec::with_capacity(config.ways as usize); sets as usize],
            stats: CacheStats::default(),
        }
    }

    /// Set index and tag for `addr` — all shifts and masks: line size
    /// and set count are powers of two by construction.
    #[inline]
    fn locate(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.config.line_shift();
        let set_bits = self.sets.len().trailing_zeros();
        ((line as usize) & (self.sets.len() - 1), line >> set_bits)
    }

    /// Accesses the line containing `addr`; returns `true` on hit. On a
    /// miss the line is filled (allocate-on-miss for reads and writes:
    /// metadata is write-back, write-allocate).
    pub fn access(&mut self, addr: u64) -> bool {
        let (set_idx, tag) = self.locate(addr);
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            let t = set.remove(pos);
            set.insert(0, t);
            self.stats.hits += 1;
            true
        } else {
            if set.len() == self.config.ways as usize {
                set.pop();
            }
            set.insert(0, tag);
            self.stats.misses += 1;
            false
        }
    }

    /// Records a hit for an address whose line is known to sit at the
    /// MRU way of its set, skipping the associative search — the
    /// warm-path shortcut of the batched filtering loop. Equivalent to
    /// [`TagCache::access`] for that case: the hit counter advances and
    /// the set's recency order (the line is already in front) is
    /// unchanged.
    #[inline]
    pub fn record_mru_hit(&mut self, addr: u64) {
        #[cfg(debug_assertions)]
        {
            let (set_idx, tag) = self.locate(addr);
            debug_assert_eq!(self.sets[set_idx].first(), Some(&tag));
        }
        let _ = addr;
        self.stats.hits += 1;
    }

    /// Records `n` hits for addresses known to sit at the MRU way of
    /// their sets — the bulk-retire form of [`TagCache::record_mru_hit`]
    /// (recency order is already correct, so only the counter moves).
    #[inline]
    pub fn record_mru_hits(&mut self, n: u64) {
        self.stats.hits += n;
    }

    /// Probes without updating LRU state or statistics.
    pub fn probe(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.locate(addr);
        self.sets[set_idx].contains(&tag)
    }

    /// Installs the line containing `addr` without counting an access
    /// (used by the SUU, whose writes stream through the cache).
    pub fn fill(&mut self, addr: u64) {
        let (set_idx, tag) = self.locate(addr);
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            let t = set.remove(pos);
            set.insert(0, t);
        } else {
            if set.len() == self.config.ways as usize {
                set.pop();
            }
            set.insert(0, tag);
        }
    }

    /// Number of sets (a power of two), without recomputing the
    /// geometry division.
    #[inline]
    pub fn set_count(&self) -> usize {
        self.sets.len()
    }

    /// Accumulated hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The cache geometry.
    pub fn config(&self) -> TagCacheConfig {
        self.config
    }

    /// Invalidates everything (used between measurement samples).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let c = TagCacheConfig::md_cache();
        assert_eq!(c.sets(), 32);
        assert_eq!(TagCacheConfig::l2().sets(), 2048);
    }

    #[test]
    fn same_line_hits() {
        let mut c = TagCache::new(TagCacheConfig::md_cache());
        assert!(!c.access(0x1000));
        assert!(c.access(0x103f));
        assert!(!c.access(0x1040));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        let cfg = TagCacheConfig {
            size_bytes: 2 * 64, // 1 set, 2 ways
            ways: 2,
            line_bytes: 64,
        };
        let mut c = TagCache::new(cfg);
        c.access(0); // A
        c.access(64); // B
        c.access(0); // A hit, A is MRU
        c.access(128); // C evicts B
        assert!(c.probe(0));
        assert!(!c.probe(64));
        assert!(c.probe(128));
    }

    #[test]
    fn probe_does_not_perturb() {
        let mut c = TagCache::new(TagCacheConfig::md_cache());
        assert!(!c.probe(0x2000));
        assert_eq!(c.stats().accesses(), 0);
        c.access(0x2000);
        assert!(c.probe(0x2000));
        assert_eq!(c.stats().accesses(), 1);
    }

    #[test]
    fn fill_installs_without_counting() {
        let mut c = TagCache::new(TagCacheConfig::md_cache());
        c.fill(0x3000);
        assert!(c.probe(0x3000));
        assert_eq!(c.stats().accesses(), 0);
    }

    #[test]
    fn flush_invalidates() {
        let mut c = TagCache::new(TagCacheConfig::md_cache());
        c.access(0x100);
        c.flush();
        assert!(!c.probe(0x100));
    }

    #[test]
    fn hit_ratio_of_empty_cache_is_one() {
        let c = TagCache::new(TagCacheConfig::md_cache());
        assert_eq!(c.stats().hit_ratio(), 1.0);
    }
}
