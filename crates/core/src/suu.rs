//! The Stack-Update Unit (SUU) — Section 4.2.
//!
//! A finite state machine that takes the stack frame's starting address
//! and length, computes the covered metadata block addresses, and issues
//! one metadata-cache line write per cycle setting the range to one of
//! two predefined INV RF values (one for calls, one for returns).

use fade_isa::{StackUpdateEvent, StackUpdateKind};
use fade_shadow::{MetadataMap, MetadataState};

use crate::invrf::{InvId, InvRf};
use crate::md_cache::TagCache;

/// The SUU FSM. At most one stack update is in flight at a time; the
/// pipeline stalls instruction filtering while the SUU is busy because
/// stack updates change metadata state (Section 5.2).
#[derive(Clone, Debug)]
pub struct StackUpdateUnit {
    /// Remaining line writes for the in-flight update.
    lines_left: u32,
    /// Next metadata address to write.
    cursor: u64,
    /// End of the metadata range.
    end: u64,
    /// Fill value for the in-flight update.
    value: u8,
    /// Total line writes issued (statistics).
    writes_issued: u64,
    /// Total stack updates processed.
    updates: u64,
}

/// Line size the SUU writes per cycle (matches the MD cache line).
const SUU_LINE_BYTES: u64 = 64;

impl StackUpdateUnit {
    /// Creates an idle SUU.
    pub fn new() -> Self {
        StackUpdateUnit {
            lines_left: 0,
            cursor: 0,
            end: 0,
            value: 0,
            writes_issued: 0,
            updates: 0,
        }
    }

    /// Returns `true` while an update is in flight.
    #[inline]
    pub fn busy(&self) -> bool {
        self.lines_left > 0
    }

    /// Starts processing a stack-update event.
    ///
    /// The *functional* metadata effect is applied immediately (the
    /// simulator keeps metadata in program order); the FSM then accounts
    /// one cycle per covered metadata line.
    ///
    /// Returns the number of cycles the unit will be busy.
    ///
    /// # Panics
    ///
    /// Panics if the unit is already busy.
    pub fn start(
        &mut self,
        ev: &StackUpdateEvent,
        call_inv: InvId,
        ret_inv: InvId,
        inv: &InvRf,
        map: &MetadataMap,
        state: &mut MetadataState,
    ) -> u32 {
        assert!(!self.busy(), "SUU is busy");
        self.value = match ev.kind {
            StackUpdateKind::Call => inv.read(call_inv) as u8,
            StackUpdateKind::Return => inv.read(ret_inv) as u8,
        };
        // Functional effect: set the frame's metadata range.
        state.fill_app_range(ev.base, ev.len, self.value);
        // Timing: one MD-cache line write per cycle over the range.
        let (start, len) = map.md_range(ev.base, ev.len);
        if len == 0 {
            self.updates += 1;
            return 0;
        }
        let first_line = start / SUU_LINE_BYTES;
        let last_line = (start + len - 1) / SUU_LINE_BYTES;
        self.lines_left = (last_line - first_line + 1) as u32;
        self.cursor = first_line * SUU_LINE_BYTES;
        self.end = start + len;
        self.updates += 1;
        self.lines_left
    }

    /// Advances one cycle: issues one line write into the MD cache.
    /// Returns `true` when the update completed this cycle.
    pub fn tick(&mut self, md_cache: &mut TagCache) -> bool {
        if !self.busy() {
            return false;
        }
        md_cache.fill(self.cursor);
        self.cursor += SUU_LINE_BYTES;
        self.writes_issued += 1;
        self.lines_left -= 1;
        self.lines_left == 0
    }

    /// Total line writes issued.
    pub fn writes_issued(&self) -> u64 {
        self.writes_issued
    }

    /// Total stack updates processed.
    pub fn updates(&self) -> u64 {
        self.updates
    }
}

impl Default for StackUpdateUnit {
    fn default() -> Self {
        StackUpdateUnit::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::md_cache::TagCacheConfig;
    use fade_isa::VirtAddr;

    fn setup() -> (InvRf, MetadataState, TagCache) {
        let mut inv = InvRf::new();
        inv.write(InvId::new(0), 2); // call: allocated-uninitialized
        inv.write(InvId::new(1), 0); // return: unallocated
        let state = MetadataState::new(MetadataMap::per_word());
        let cache = TagCache::new(TagCacheConfig::md_cache());
        (inv, state, cache)
    }

    fn call_event(base: u32, len: u32) -> StackUpdateEvent {
        StackUpdateEvent {
            base: VirtAddr::new(base),
            len,
            kind: StackUpdateKind::Call,
            tid: 0,
        }
    }

    #[test]
    fn call_sets_frame_metadata() {
        let (inv, mut st, _c) = setup();
        let mut suu = StackUpdateUnit::new();
        let map = st.map();
        let cycles = suu.start(&call_event(0x8000, 256), InvId::new(0), InvId::new(1), &inv, &map, &mut st);
        // 256 app bytes -> 64 md bytes -> 1..2 lines depending on alignment.
        assert!((1..=2).contains(&cycles), "got {cycles}");
        assert_eq!(st.mem_meta(VirtAddr::new(0x8000)), 2);
        assert_eq!(st.mem_meta(VirtAddr::new(0x80fc)), 2);
        assert_eq!(st.mem_meta(VirtAddr::new(0x8100)), 0);
    }

    #[test]
    fn return_resets_frame_metadata() {
        let (inv, mut st, _c) = setup();
        let mut suu = StackUpdateUnit::new();
        let map = st.map();
        suu.start(&call_event(0x8000, 128), InvId::new(0), InvId::new(1), &inv, &map, &mut st);
        // Finish the call, then return over the same range.
        while suu.busy() {
            let mut c = TagCache::new(TagCacheConfig::md_cache());
            suu.tick(&mut c);
        }
        let ret = StackUpdateEvent {
            kind: StackUpdateKind::Return,
            ..call_event(0x8000, 128)
        };
        suu.start(&ret, InvId::new(0), InvId::new(1), &inv, &map, &mut st);
        assert_eq!(st.mem_meta(VirtAddr::new(0x8000)), 0);
        assert_eq!(suu.updates(), 2);
    }

    #[test]
    fn tick_issues_one_line_per_cycle() {
        let (inv, mut st, mut cache) = setup();
        let mut suu = StackUpdateUnit::new();
        let map = st.map();
        // 1024 app bytes -> 256 md bytes -> 4-5 lines.
        let cycles = suu.start(&call_event(0x10000, 1024), InvId::new(0), InvId::new(1), &inv, &map, &mut st);
        let mut n = 0;
        while suu.busy() {
            suu.tick(&mut cache);
            n += 1;
            assert!(n <= cycles, "SUU ran longer than promised");
        }
        assert_eq!(n, cycles);
        assert_eq!(suu.writes_issued(), cycles as u64);
        // The written lines are now resident in the MD cache.
        let (md_start, _) = map.md_range(VirtAddr::new(0x10000), 1024);
        assert!(cache.probe(md_start));
    }

    #[test]
    fn zero_length_frame_completes_immediately() {
        let (inv, mut st, _c) = setup();
        let mut suu = StackUpdateUnit::new();
        let map = st.map();
        let cycles = suu.start(&call_event(0x8000, 0), InvId::new(0), InvId::new(1), &inv, &map, &mut st);
        assert_eq!(cycles, 0);
        assert!(!suu.busy());
    }

    #[test]
    #[should_panic(expected = "SUU is busy")]
    fn start_while_busy_panics() {
        let (inv, mut st, _c) = setup();
        let mut suu = StackUpdateUnit::new();
        let map = st.map();
        suu.start(&call_event(0, 4096), InvId::new(0), InvId::new(1), &inv, &map, &mut st);
        suu.start(&call_event(0, 4096), InvId::new(0), InvId::new(1), &inv, &map, &mut st);
    }
}
