//! Vectorized tier-A filtering over structure-of-arrays event blocks.
//!
//! The scalar batch loop ([`Fade::run_batch`]) walks one instruction
//! event at a time through the inline single-shot pipeline. This module
//! restructures that hot path around [`EventBlock`]s: up to
//! [`BLOCK_LANES`] decoded events whose fields live in separate lane
//! arrays, so the filter decision becomes data-parallel —
//!
//! 1. **Plan phase** (`Fade::block_plan`): every lane's event ID is
//!    resolved against the event table once per distinct ID (streams
//!    are bursty, so this is usually one lookup per block). Blocks with
//!    an unknown ID, a multi-shot chain or a partial-tag entry are
//!    ineligible and take the scalar path unchanged.
//! 2. **Warm phase** (`Fade::warm_sim_mask`): bitmask M-TLB/MD-window
//!    matching by *forward simulation*. Walking the memory lanes in
//!    order against a copy of the batch context, a lane is warm when
//!    its page and metadata line match the (simulated) MRU window;
//!    a cold lane installs its page/line into the copy exactly as the
//!    scalar loop's real access would, so lanes behind a one-off miss
//!    still predict warm. The simulation is exact as long as no lane
//!    dispatches (see below), reads no metadata, and moves no LRU
//!    state.
//! 3. **Verdict phase** (`Fade::swar_verdict_mask`): for clean-check
//!    lanes with byte-wide operand rules, operand bytes are gathered
//!    per lane, packed eight lanes to a `u64`, and compared against the
//!    per-lane rule target with SWAR byte-equality detection
//!    ([`eq_byte_lanes`]) — one XOR + mask per eight events instead of
//!    eight branchy scalar evaluations. Uniform-ID blocks broadcast a
//!    single rule (`Fade::swar_verdict_uniform`); mixed blocks of up
//!    to a few distinct IDs digest each lane's rule into per-lane
//!    mask/target bytes (`Fade::swar_verdict_mixed`). Blocks whose
//!    rules are wider than a byte fall back to the sequential
//!    `Fade::filtered_prefix` scan.
//! 4. **Retire loop** (`Fade::run_block`): the warm **and** filtered
//!    run starting at the current lane retires in bulk
//!    (`Fade::bulk_retire`) with exactly the counter increments the
//!    scalar loop would make (MRU hits carry no LRU motion); the next
//!    lane — cold or unfiltered — replays through the scalar
//!    `Fade::batch_instr`, and the loop repeats. Lane masks are
//!    computed once per block and recomputed only after a lane
//!    *dispatches*: a bulk retire moves no state the masks depend on,
//!    a cold-but-filtered scalar replay performs exactly the
//!    MRU-context update the warm simulation predicted, and only a
//!    dispatch (metadata write, consumer callback, or a pipeline tick
//!    dropping the MRU context) can invalidate either mask.
//!
//! Fully-uniform blocks skip the generic loop for a fused
//! plan+warm+verdict pass (`Fade::uniform_retired`) that touches each
//! lane once.
//!
//! Because the vectorized path only ever (a) bulk-retires runs it has
//! proven warm and filtered, using the same per-event accounting as
//! the scalar loop, or (b) delegates lanes to the scalar loop itself,
//! [`FadeStats`](crate::FadeStats), [`BatchStats`], the metadata state,
//! every cache/TLB counter and the dispatched-event stream come out
//! bit-identical to [`Fade::run_batch_with`] for any event sequence,
//! any monitor program and both dispatch modes. `tests/` holds the
//! differential harness that enforces this monitor × suite.
//!
//! ## Adaptive gate
//!
//! Block vectorization pays off when blocks retire whole; on streams
//! with persistently poor MRU-window locality (page-alternating
//! access patterns) the SoA decode and lane passes are overhead over
//! the scalar loop. [`Fade::run_batch_vectorized_with`] therefore
//! tracks consecutive partially-retired blocks and, past a short
//! streak, routes the next stretch of events through the scalar loop
//! directly before probing with a block again. The gate state lives in
//! the batch context so it persists across driver calls; it is purely
//! a throughput heuristic — both routes are bit-exact, so it never
//! shows up in results.
//!
//! ## Metadata reads and recency
//!
//! Shadow-memory reads never change metadata *values* (representation
//! demotions are lossless and reads never fault pages in), but they do
//! refresh page recency. The vectorized path keeps its read pattern
//! nearly identical to the scalar one — the SWAR gather touches the
//! same lanes the scalar loop would, in lane order, and the sequential
//! verdict path stops at the first unfiltered lane exactly like the
//! scalar loop. The one divergence: lanes at or past an unfiltered
//! SWAR verdict are re-read by their scalar replay (the gathered bytes
//! are discarded, never reused across a dispatch), which can only
//! refresh recency on values that are then re-fetched identically.

use fade_isa::{AppEvent, EventBlock, EventId, VirtAddr, BLOCK_LANES};

/// Narrowest instruction run worth routing through the SoA kernel: the
/// SWAR comparisons pack 8 metadata bytes per `u64` word, so a block
/// with fewer lanes does scalar-shaped work *plus* the fixed SoA decode
/// overhead. Shorter runs take the scalar per-event path directly.
pub const SWAR_PAYOFF_LANES: usize = 8;
use fade_shadow::MetadataState;

use crate::event_table::{FilterKind, OperandSel};
use crate::fade::{BatchStats, Fade, UnfilteredEvent};
use crate::filter_logic::evaluate_shot;

const LANE_LO: u64 = 0x0101_0101_0101_0101;
const LANE_HI: u64 = 0x8080_8080_8080_8080;

/// Replicates a byte into all eight lanes of a `u64`.
#[inline]
pub fn broadcast8(b: u8) -> u64 {
    b as u64 * LANE_LO
}

/// Packs up to eight bytes into a `u64`, byte `i` in lane `i` (bits
/// `8i..8i+8`); missing lanes are zero.
#[inline]
pub fn pack8(bytes: &[u8]) -> u64 {
    debug_assert!(bytes.len() <= 8);
    let mut w = 0u64;
    for (i, &b) in bytes.iter().enumerate() {
        w |= (b as u64) << (8 * i);
    }
    w
}

/// Lane bitmask (bits `0..8`) of the zero bytes of `w`.
///
/// Uses the borrow-safe formulation `HI & !(w | ((w | HI) - LO))`: the
/// textbook `(w - LO) & !w & HI` lets a borrow out of a zero byte fake
/// a hit in the byte above it (e.g. `0x0100` flags both lanes). Setting
/// the high bit before subtracting confines each lane's borrow.
#[inline]
pub fn zero_byte_lanes(w: u64) -> u64 {
    let z = LANE_HI & !(w | ((w | LANE_HI).wrapping_sub(LANE_LO)));
    // Gather the per-byte high bits down to bits 0..8.
    (z >> 7).wrapping_mul(0x0102_0408_1020_4080) >> 56
}

/// Lane bitmask (bits `0..8`) of the bytes of `w` equal to the
/// corresponding byte of `t`.
#[inline]
pub fn eq_byte_lanes(w: u64, t: u64) -> u64 {
    zero_byte_lanes(w ^ t)
}

/// What the vectorized kernel would decide about a block, without
/// running it — the probe surface the property tests compare against
/// per-event scalar verdicts.
///
/// Monitor-visible state (metadata values, counters, LRU order) is
/// untouched; computing `verdict_mask` reads shadow metadata, which
/// refreshes page recency only.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockProbe {
    /// The block passed the plan phase: every lane's ID has a
    /// single-shot, non-partial event-table entry.
    pub eligible: bool,
    /// Bit `i` set when lane `i` passes the bitmask M-TLB/MD-window
    /// match (non-memory lanes are trivially warm). Zero when
    /// ineligible.
    pub warm_mask: u64,
    /// Bit `i` set when lane `i`'s filter condition holds (the lane
    /// would be filtered). Zero when ineligible.
    pub verdict_mask: u64,
}

/// Per-block plan: table facts shared by every kernel phase.
struct BlockPlan {
    /// Bit `i` set when lane `i`'s entry has a memory operand.
    mem_mask: u64,
    /// Metadata addresses of the memory lanes (garbage elsewhere).
    md_addrs: [u64; BLOCK_LANES],
    /// All lanes carry this event ID (SWAR verdict precondition).
    uniform_id: Option<EventId>,
}

impl Fade {
    /// [`Fade::run_batch`] over the vectorized SoA kernel: groups runs
    /// of consecutive instruction events into [`EventBlock`]s of up to
    /// `width` lanes and filters each block data-parallel, with the
    /// scalar single-shot pipeline as the per-lane fallback for blocks
    /// containing any miss or unfilterable event. Bit-identical results
    /// to [`Fade::run_batch`] — stats, metadata, LRU order, stalls and
    /// [`BatchStats`] all match.
    pub fn run_batch_vectorized(
        &mut self,
        events: &[AppEvent],
        st: &mut MetadataState,
        width: usize,
    ) -> BatchStats {
        self.run_batch_vectorized_with(events, st, width, |_, _| {})
    }

    /// [`Fade::run_batch_vectorized`] with a dispatched-event consumer,
    /// mirroring [`Fade::run_batch_with`].
    ///
    /// A call too short to ever form a payoff-width block is the scalar
    /// loop with extra steps: it is handed over wholesale, before any
    /// vectorized setup, so drivers submitting tiny batches pay exactly
    /// the scalar path's cost (both paths are bit-exact, so routing is
    /// invisible in results). The wrapper is `#[inline]` precisely so
    /// that decision — and the delegated call — collapses into the
    /// caller without an extra frame on the per-event path.
    #[inline]
    pub fn run_batch_vectorized_with<F>(
        &mut self,
        events: &[AppEvent],
        st: &mut MetadataState,
        width: usize,
        consumer: F,
    ) -> BatchStats
    where
        F: FnMut(UnfilteredEvent, &mut MetadataState),
    {
        let payoff = SWAR_PAYOFF_LANES.min(width.max(1));
        if events.len() < payoff {
            return self.run_batch_with(events, st, consumer);
        }
        self.run_batch_vectorized_wide(events, st, width, payoff, consumer)
    }

    /// The SoA block loop behind [`Fade::run_batch_vectorized_with`],
    /// for calls long enough that a payoff-width block can form.
    fn run_batch_vectorized_wide<F>(
        &mut self,
        events: &[AppEvent],
        st: &mut MetadataState,
        width: usize,
        payoff: usize,
        mut consumer: F,
    ) -> BatchStats
    where
        F: FnMut(UnfilteredEvent, &mut MetadataState),
    {
        assert!(
            self.outstanding.is_empty(),
            "run_batch requires every previously dispatched handler to be completed"
        );
        let mut out = BatchStats::default();
        if !self.is_idle() {
            self.settle_batch(st, &mut out, &mut consumer);
        }
        // Built lazily: a call whose every run is bypassed (narrow
        // batches) or cooled off never pays for zeroing the SoA lanes.
        let mut block: Option<EventBlock> = None;
        // Adaptive gate: block vectorization only pays off when blocks
        // retire (nearly) whole — the fixed SoA decode and lane-pass
        // overhead outweighs the per-lane saving as soon as a few lanes
        // fall back to scalar replay, as they persistently do on
        // low-locality streams (page-alternating access, poor
        // MRU-window coverage). After `POOR_STREAK` consecutive
        // partially-retired blocks, the next `COOLOFF_BLOCKS`
        // block-sized chunks run the scalar loop directly, then one
        // block probes again. The counters live in [`BatchCtx`] so the
        // gate keeps learning across calls even when the driver submits
        // small batches. Routing is invisible in results — both paths
        // are bit-exact — so this only moves the throughput floor up to
        // the scalar loop's.
        const POOR_STREAK: u32 = 2;
        const COOLOFF_BLOCKS: u32 = 1024;
        let mut i = 0;
        while i < events.len() {
            match &events[i] {
                AppEvent::Instr(_) => {
                    // Width gate: the SWAR verdict packs 8 lanes per
                    // u64 word, so a run shorter than one word can't
                    // amortize the fixed SoA decode and lane-pass
                    // overhead no matter how well it retires — small
                    // driver batches (batch size 1–4 chunks) were
                    // paying a persistent 5–10% tax over the scalar
                    // loop. Runs narrower than the payoff width go
                    // scalar directly, without touching the adaptive
                    // gate's counters: a narrow run says nothing about
                    // the stream's locality.
                    let run = events[i..]
                        .iter()
                        .take(payoff)
                        .take_while(|e| matches!(e, AppEvent::Instr(_)))
                        .count();
                    if run < payoff {
                        for _ in 0..run {
                            let AppEvent::Instr(iev) = &events[i] else { unreachable!() };
                            out.events += 1;
                            self.batch_instr(iev, st, &mut out, &mut consumer);
                            i += 1;
                        }
                        continue;
                    }
                    if self.batch.vec_cooloff > 0 {
                        self.batch.vec_cooloff -= 1;
                        let mut lanes = 0;
                        while i < events.len() && lanes < width {
                            let AppEvent::Instr(iev) = &events[i] else { break };
                            out.events += 1;
                            self.batch_instr(iev, st, &mut out, &mut consumer);
                            i += 1;
                            lanes += 1;
                        }
                        continue;
                    }
                    let block = block.get_or_insert_with(|| EventBlock::new(width));
                    block.clear();
                    while i < events.len() {
                        let AppEvent::Instr(iev) = &events[i] else { break };
                        if !block.push(iev) {
                            break;
                        }
                        i += 1;
                    }
                    out.events += block.len() as u64;
                    let retired = self.run_block(block, st, &mut out, &mut consumer);
                    if retired < block.len() {
                        self.batch.vec_poor += 1;
                        if self.batch.vec_poor >= POOR_STREAK {
                            self.batch.vec_cooloff = COOLOFF_BLOCKS;
                            self.batch.vec_poor = 0;
                        }
                    } else {
                        self.batch.vec_poor = 0;
                    }
                }
                other => {
                    out.events += 1;
                    out.fallback += 1;
                    let mark = out.dispatched;
                    self.event_q
                        .push(*other)
                        .expect("event queue is drained between batch events");
                    self.settle_batch(st, &mut out, &mut consumer);
                    let d = out.dispatched - mark;
                    out.occ_event(d);
                    i += 1;
                }
            }
        }
        out
    }

    /// Filters one block: bulk-retires warm, filtered lane runs and
    /// replays the remaining lanes through the scalar tier-A loop.
    /// Returns the number of lanes retired in bulk (the adaptive gate's
    /// quality signal).
    fn run_block<F>(
        &mut self,
        block: &EventBlock,
        st: &mut MetadataState,
        out: &mut BatchStats,
        consumer: &mut F,
    ) -> usize
    where
        F: FnMut(UnfilteredEvent, &mut MetadataState),
    {
        debug_assert!(self.is_idle() && self.ufq.is_empty() && self.fsq.is_empty());
        let len = block.len();
        let ids = block.ids();
        let uniform = ids.iter().all(|&r| r == ids[0]);
        let mut i = if uniform {
            self.uniform_retired(EventId::new(ids[0]), block, st, out)
        } else {
            0
        };
        let mut vec_retired = i;
        if i < len {
            // Run-retire loop: alternate bulk-retiring the warm and
            // filtered run that starts at lane `i` with one scalar
            // event. A bulk retire moves no LRU or window state, so a
            // warm mask computed at the top of an iteration stays valid
            // across the whole run it retires; the scalar event (a cold
            // or unfiltered lane) performs its real accesses — warming
            // the MRU window for the lanes behind it — after which the
            // next iteration re-derives warmth and verdicts from the
            // updated state. This is bit-exact with the scalar loop by
            // induction over lanes, and turns a single mid-block
            // metadata-line transition from a full-block bailout into
            // one scalar event between two vectorized runs.
            let plan = self.block_plan(block);
            // Both lane masks survive scalar replays of non-dispatching
            // lanes: the warm mask is a forward simulation that already
            // accounts for the MRU-context updates cold lanes make, and
            // SWAR verdicts depend only on metadata, registers and
            // invariants — which only a dispatch (metadata write, or
            // the consumer, which owns the metadata state, or a
            // pipeline tick that drops the MRU context) can change. So
            // the masks are computed once and recomputed only after a
            // dispatching lane.
            let mut warm = 0u64;
            let mut verdict: Option<u64> = None;
            let mut masks_valid = false;
            loop {
                if let Some(plan) = &plan {
                    if !masks_valid {
                        warm = self.warm_sim_mask(block, plan, i);
                        verdict = self.swar_verdict_mask(block, plan, i, st);
                        masks_valid = true;
                    }
                    let p = match verdict {
                        Some(v) => ((!((warm & v) >> i)).trailing_zeros() as usize).min(len - i),
                        None => {
                            let run =
                                ((!(warm >> i)).trailing_zeros() as usize).min(len - i);
                            self.filtered_prefix(block, plan, i, st).min(run)
                        }
                    };
                    if p > 0 {
                        self.bulk_retire(block, plan, i, p, out);
                        i += p;
                        vec_retired += p;
                    }
                }
                if i >= len {
                    break;
                }
                let ev = block.lane(i);
                let dispatched = out.dispatched;
                self.batch_instr(&ev, st, out, consumer);
                if out.dispatched != dispatched {
                    masks_valid = false;
                }
                i += 1;
            }
        }
        vec_retired
    }

    /// Fused plan+warm pass for the dominant block shape — every lane
    /// carries the same event ID (streams are bursty, so nearly all
    /// blocks look like this). One table lookup covers the block, and a
    /// single pass per lane computes the metadata address and the
    /// MRU-window match, bailing to the scalar path at the first cold
    /// or ineligible lane — before any metadata has been read. Decision
    /// (and every counter) is identical to the phased
    /// [`Fade::block_plan`]/[`Fade::warm_mask`] pipeline; this is the
    /// same computation with the per-phase lane loops fused.
    fn uniform_retired(
        &mut self,
        id: EventId,
        block: &EventBlock,
        st: &MetadataState,
        out: &mut BatchStats,
    ) -> usize {
        let Some(entry) = self.program.table().entry(id) else {
            return 0;
        };
        if entry.next_entry.is_some() || entry.partial {
            return 0;
        }
        let has_mem = OperandSel::ALL
            .iter()
            .any(|&s| entry.operand(s).valid && entry.operand(s).mem);
        let mut plan = BlockPlan {
            mem_mask: 0,
            md_addrs: [0u64; BLOCK_LANES],
            uniform_id: Some(id),
        };
        if has_mem {
            let Some(mru_page) = self.batch.mru_page else {
                return 0;
            };
            let line_shift = self.md_cache.config().line_shift();
            let slot_mask =
                (self.md_cache.set_count() as u64).min(crate::fade::MD_WINDOW_SLOTS as u64) - 1;
            let map = self.program.md_map();
            let addrs = block.addrs();
            for (i, &raw) in addrs.iter().enumerate().take(block.len()) {
                let a = VirtAddr::new(raw);
                if a.page() != mru_page {
                    return 0;
                }
                let md = map.md_addr(a);
                let line = md >> line_shift;
                if self.batch.md_window[(line & slot_mask) as usize] != Some(line) {
                    return 0;
                }
                plan.md_addrs[i] = md;
            }
            plan.mem_mask = block.full_mask();
        }
        let p = self.filtered_prefix(block, &plan, 0, st);
        if p > 0 {
            self.bulk_retire(block, &plan, 0, p, out);
        }
        p
    }

    /// Plan phase: resolves every lane's event ID against the table
    /// (memoized per distinct ID). `None` when any lane has no entry, a
    /// multi-shot continuation or a partial tag — those need the scalar
    /// loop's dispatch machinery.
    fn block_plan(&self, block: &EventBlock) -> Option<BlockPlan> {
        let ids = block.ids();
        let addrs = block.addrs();
        let mut mem_mask = 0u64;
        let mut md_addrs = [0u64; BLOCK_LANES];
        let mut memo: Option<(u8, bool)> = None;
        let mut uniform = true;
        for (i, &raw) in ids.iter().enumerate() {
            uniform &= raw == ids[0];
            let has_mem = match memo {
                Some((id, hm)) if id == raw => hm,
                _ => {
                    let e = self.program.table().entry(EventId::new(raw))?;
                    if e.next_entry.is_some() || e.partial {
                        return None;
                    }
                    let hm = OperandSel::ALL
                        .iter()
                        .any(|&s| e.operand(s).valid && e.operand(s).mem);
                    memo = Some((raw, hm));
                    hm
                }
            };
            if has_mem {
                mem_mask |= 1 << i;
                md_addrs[i] = self.program.md_map().md_addr(VirtAddr::new(addrs[i]));
            }
        }
        Some(BlockPlan {
            mem_mask,
            md_addrs,
            uniform_id: uniform.then(|| EventId::new(ids[0])),
        })
    }

    /// Warm phase: lane bitmask of events whose metadata access provably
    /// hits at the MRU of both the M-TLB and its MD-cache set. Pure —
    /// reads only the batch context, never the caches. Bits below
    /// `start` (already-retired lanes) are not computed and undefined.
    fn warm_mask(&self, block: &EventBlock, plan: &BlockPlan, start: usize) -> u64 {
        // Lanes without a memory operand skip the Metadata Read stage
        // entirely, so they are trivially warm.
        let mut warm = block.full_mask() & !plan.mem_mask;
        let Some(mru_page) = self.batch.mru_page else {
            return warm;
        };
        let mut rest = plan.mem_mask & (u64::MAX << start);
        while rest != 0 {
            let i = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            let page_ok = VirtAddr::new(block.addrs()[i]).page() == mru_page;
            let line = self.md_line(plan.md_addrs[i]);
            let line_ok = self.batch.md_window[self.md_window_slot(line)] == Some(line);
            warm |= ((page_ok & line_ok) as u64) << i;
        }
        warm
    }

    /// Forward-simulated warm mask: bit `i` set when lane `i`'s
    /// metadata access will provably hit at the MRU of both the M-TLB
    /// and its MD-cache set *at the time the run-retire loop reaches
    /// it*. Unlike [`Fade::warm_mask`] (a snapshot against the current
    /// context, the probe surface), this walks the lanes front to back
    /// carrying a copy of the MRU context and applies the exact update
    /// a cold lane's scalar replay will make — install its page and
    /// line at MRU — so one pass predicts the whole block's warm/cold
    /// pattern. The prediction holds until some lane dispatches (a
    /// dispatch can tick the pipeline, which drops the MRU context);
    /// the run-retire loop recomputes it then.
    fn warm_sim_mask(&self, block: &EventBlock, plan: &BlockPlan, start: usize) -> u64 {
        let mut warm = block.full_mask() & !plan.mem_mask;
        let mut mru_page = self.batch.mru_page;
        let mut window = self.batch.md_window;
        let addrs = block.addrs();
        let mut rest = plan.mem_mask & (u64::MAX << start);
        while rest != 0 {
            let i = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            let page = VirtAddr::new(addrs[i]).page();
            let line = self.md_line(plan.md_addrs[i]);
            let slot = self.md_window_slot(line);
            if mru_page == Some(page) && window[slot] == Some(line) {
                warm |= 1 << i;
            } else {
                mru_page = Some(page);
                window[slot] = Some(line);
            }
        }
        warm
    }

    /// Verdict phase: length of the filtered run from lane `start` —
    /// the number of consecutive lanes whose condition holds. SWAR for
    /// byte-wide clean checks, sequential scalar evaluation otherwise
    /// (stopping at the first unfiltered lane, exactly like the scalar
    /// loop).
    fn filtered_prefix(
        &self,
        block: &EventBlock,
        plan: &BlockPlan,
        start: usize,
        st: &MetadataState,
    ) -> usize {
        if let Some(verdict) = self.swar_verdict_mask(block, plan, start, st) {
            return ((!(verdict >> start)).trailing_zeros() as usize).min(block.len() - start);
        }
        for i in start..block.len() {
            if !self.lane_filtered(block, plan, i, st) {
                return i - start;
            }
        }
        block.len() - start
    }

    /// Scalar verdict for one lane: operand fetch + shot evaluation,
    /// identical to tier A's filter decision.
    fn lane_filtered(
        &self,
        block: &EventBlock,
        _plan: &BlockPlan,
        i: usize,
        st: &MetadataState,
    ) -> bool {
        let ev = block.lane(i);
        let entry = self.program.table().entry(ev.id).expect("plan implies an entry");
        let ops = self.fetch_operands(entry, &ev, st);
        evaluate_shot(entry, &ops, self.program.invariants()).condition_holds
    }

    /// SWAR verdict over the whole block: `Some(mask)` (bit `i` = lane
    /// `i` filtered) when every lane's entry is a clean check whose
    /// valid operand rules are all byte-wide (memory operands read one
    /// metadata byte, masks fit in a byte). Uniform-ID blocks broadcast
    /// one mask/invariant pair; mixed-ID blocks (e.g. interleaved
    /// load/store checks) build per-lane mask and target words from a
    /// small per-ID digest. Either way each operand gathers its
    /// per-lane bytes, packs eight lanes per `u64` and compares in one
    /// XOR.
    /// Bits below `start` (already-retired lanes, never read) are
    /// undefined; metadata is gathered only for lanes `start..`.
    fn swar_verdict_mask(
        &self,
        block: &EventBlock,
        plan: &BlockPlan,
        start: usize,
        st: &MetadataState,
    ) -> Option<u64> {
        match plan.uniform_id {
            Some(id) => self.swar_verdict_uniform(id, block, plan, start, st),
            None => self.swar_verdict_mixed(block, plan, start, st),
        }
    }

    /// [`Fade::swar_verdict_mask`] for uniform-ID blocks: one table
    /// entry covers every lane, so the operand mask and invariant
    /// target are block-wide broadcasts.
    fn swar_verdict_uniform(
        &self,
        id: EventId,
        block: &EventBlock,
        plan: &BlockPlan,
        start: usize,
        st: &MetadataState,
    ) -> Option<u64> {
        let entry = self.program.table().entry(id).expect("plan implies an entry");
        if entry.kind != FilterKind::CleanCheck {
            return None;
        }
        for &sel in OperandSel::ALL.iter() {
            let rule = entry.operand(sel);
            if rule.valid && (rule.mask > 0xff || (rule.mem && rule.md_bytes != 1)) {
                return None;
            }
        }
        let n = block.len();
        let mut verdict = block.full_mask();
        for &sel in OperandSel::ALL.iter() {
            let rule = entry.operand(sel);
            // Invalid operands and rules without an invariant always
            // pass a clean check; skip the gather.
            let (true, Some(inv_id)) = (rule.valid, rule.inv_id) else {
                continue;
            };
            let mask_w = broadcast8(rule.mask as u8);
            let target = broadcast8((self.program.invariants().read(inv_id) & rule.mask) as u8);
            let mut bytes = [0u8; BLOCK_LANES];
            if rule.mem {
                st.mem.gather_u8(&plan.md_addrs[start..n], &mut bytes[start..n]);
            } else {
                let regs = match sel {
                    OperandSel::S1 => block.src1s(),
                    OperandSel::S2 => block.src2s(),
                    OperandSel::D => block.dests(),
                };
                for (i, b) in bytes[start..n].iter_mut().enumerate() {
                    *b = st.regs.read(fade_isa::Reg::new(regs[start + i]));
                }
            }
            // Unoccupied lanes of `bytes` are zero, so each 8-lane word
            // can load straight out of the array; the chunk mask keeps
            // tail lanes from clearing verdict bits. The operand mask
            // is applied SWAR-wide rather than per byte.
            let mut base = start & !7;
            while base < n {
                let lanes = (n - base).min(8);
                let w = u64::from_le_bytes(bytes[base..base + 8].try_into().expect("8-byte chunk"))
                    & mask_w;
                let eq = eq_byte_lanes(w, target) << base;
                let chunk = ((1u64 << lanes) - 1) << base;
                verdict &= eq | !chunk;
                base += lanes;
            }
        }
        Some(verdict)
    }

    /// [`Fade::swar_verdict_mask`] for mixed-ID blocks — the shape real
    /// traces produce, where monitored loads and stores interleave. The
    /// block's distinct IDs (at most [`MIXED_IDS`], else scalar) are
    /// digested once into per-operand `(mask, target, mem)` byte rules;
    /// the digests then expand into per-lane mask and target arrays, so
    /// the packed compare is the same one XOR per eight lanes as the
    /// uniform path, just against lane-varying words. Lanes whose rule
    /// is invalid or has no invariant get `mask = target = 0` (and a
    /// zero byte), which compares equal — exactly the clean-check
    /// always-pass of [`evaluate_shot`].
    fn swar_verdict_mixed(
        &self,
        block: &EventBlock,
        plan: &BlockPlan,
        start: usize,
        st: &MetadataState,
    ) -> Option<u64> {
        /// One operand rule reduced to SWAR bytes: `(mask, target, mem,
        /// active)`.
        type SelDigest = (u8, u8, bool, bool);
        const MIXED_IDS: usize = 4;
        let n = block.len();
        let ids = block.ids();
        let mut memo_raw = [0u8; MIXED_IDS];
        let mut memo: [[SelDigest; 3]; MIXED_IDS] = [[(0, 0, false, false); 3]; MIXED_IDS];
        let mut memo_len = 0usize;
        let mut lane_digest = [0u8; BLOCK_LANES];
        for i in start..n {
            let raw = ids[i];
            let idx = match memo_raw[..memo_len].iter().position(|&r| r == raw) {
                Some(idx) => idx,
                None => {
                    if memo_len == MIXED_IDS {
                        return None;
                    }
                    let entry = self
                        .program
                        .table()
                        .entry(EventId::new(raw))
                        .expect("plan implies an entry");
                    if entry.kind != FilterKind::CleanCheck {
                        return None;
                    }
                    let mut digest = [(0, 0, false, false); 3];
                    for (s, &sel) in OperandSel::ALL.iter().enumerate() {
                        let rule = entry.operand(sel);
                        if rule.valid && (rule.mask > 0xff || (rule.mem && rule.md_bytes != 1)) {
                            return None;
                        }
                        let (true, Some(inv_id)) = (rule.valid, rule.inv_id) else {
                            continue;
                        };
                        let target = (self.program.invariants().read(inv_id) & rule.mask) as u8;
                        digest[s] = (rule.mask as u8, target, rule.mem, true);
                    }
                    memo_raw[memo_len] = raw;
                    memo[memo_len] = digest;
                    memo_len += 1;
                    memo_len - 1
                }
            };
            lane_digest[i] = idx as u8;
        }

        let mut verdict = block.full_mask();
        for (s, &sel) in OperandSel::ALL.iter().enumerate() {
            if !(0..memo_len).any(|d| memo[d][s].3) {
                continue;
            }
            let mut bytes = [0u8; BLOCK_LANES];
            let mut masks = [0u8; BLOCK_LANES];
            let mut targets = [0u8; BLOCK_LANES];
            // Memory lanes compact into one gather (keeping lane order,
            // so page runs still coalesce) and scatter back.
            let mut gather_addrs = [0u64; BLOCK_LANES];
            let mut gather_lanes = [0u8; BLOCK_LANES];
            let mut g = 0usize;
            let regs = match sel {
                OperandSel::S1 => block.src1s(),
                OperandSel::S2 => block.src2s(),
                OperandSel::D => block.dests(),
            };
            for i in start..n {
                let (mask, target, mem, active) = memo[lane_digest[i] as usize][s];
                masks[i] = mask;
                targets[i] = target;
                if !active {
                    continue;
                }
                if mem {
                    gather_addrs[g] = plan.md_addrs[i];
                    gather_lanes[g] = i as u8;
                    g += 1;
                } else {
                    bytes[i] = st.regs.read(fade_isa::Reg::new(regs[i]));
                }
            }
            if g > 0 {
                let mut gathered = [0u8; BLOCK_LANES];
                st.mem.gather_u8(&gather_addrs[..g], &mut gathered[..g]);
                for k in 0..g {
                    bytes[gather_lanes[k] as usize] = gathered[k];
                }
            }
            let mut base = start & !7;
            while base < n {
                let lanes = (n - base).min(8);
                let take =
                    |a: &[u8; BLOCK_LANES]| u64::from_le_bytes(a[base..base + 8].try_into().expect("8-byte chunk"));
                let eq = eq_byte_lanes(take(&bytes) & take(&masks), take(&targets)) << base;
                let chunk = ((1u64 << lanes) - 1) << base;
                verdict &= eq | !chunk;
                base += lanes;
            }
        }
        Some(verdict)
    }

    /// Retire phase: lanes `start..start + p` are warm and filtered —
    /// apply exactly the scalar loop's per-event accounting in bulk. An
    /// MRU hit moves no LRU state, so this is pure counter arithmetic
    /// plus the decoded-plan handoff the scalar loop would leave
    /// behind.
    fn bulk_retire(
        &mut self,
        block: &EventBlock,
        plan: &BlockPlan,
        start: usize,
        p: usize,
        out: &mut BatchStats,
    ) {
        // start + p <= BLOCK_LANES (16), so the shifts cannot overflow.
        let mem = plan.mem_mask & ((1u64 << (start + p)) - 1) & (u64::MAX << start);
        // Debug builds keep the per-lane MRU assertions; release builds
        // retire the whole mask with two counter adds.
        #[cfg(debug_assertions)]
        {
            let addrs = block.addrs();
            let mut m = mem;
            while m != 0 {
                let i = m.trailing_zeros() as usize;
                m &= m - 1;
                self.tlb.record_mru_hit(VirtAddr::new(addrs[i]));
                self.md_cache.record_mru_hit(plan.md_addrs[i]);
            }
        }
        #[cfg(not(debug_assertions))]
        {
            let hits = mem.count_ones() as u64;
            self.tlb.record_mru_hits(hits);
            self.md_cache.record_mru_hits(hits);
        }
        let p64 = p as u64;
        out.fast_path += p64;
        out.occ_filtered_run(p64);
        self.stats.instr_events += p64;
        self.stats.shots += p64;
        self.stats.busy_cycles += p64;
        self.stats.filtered += p64;
        // Leave the decoded plan exactly as the scalar loop would after
        // the run's last lane (the MRU window is untouched by warm
        // hits).
        let last = start + p - 1;
        self.batch.plan_id = Some(EventId::new(block.ids()[last]));
        self.batch.plan_single_shot = true;
        self.batch.plan_has_mem = plan.mem_mask >> last & 1 == 1;
    }

    /// Probes a block against the current accelerator state without
    /// filtering it: plan eligibility, the warm-phase bitmask and the
    /// full per-lane verdict mask. Intended for differential and
    /// property tests; monitor-visible state is unchanged.
    pub fn probe_block(&self, block: &EventBlock, st: &MetadataState) -> BlockProbe {
        let Some(plan) = self.block_plan(block) else {
            return BlockProbe {
                eligible: false,
                warm_mask: 0,
                verdict_mask: 0,
            };
        };
        let verdict_mask = self.swar_verdict_mask(block, &plan, 0, st).unwrap_or_else(|| {
            let mut m = 0u64;
            for i in 0..block.len() {
                m |= (self.lane_filtered(block, &plan, i, st) as u64) << i;
            }
            m
        });
        BlockProbe {
            eligible: true,
            warm_mask: self.warm_mask(block, &plan, 0),
            verdict_mask,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_fills_every_lane() {
        assert_eq!(broadcast8(0xab), 0xabab_abab_abab_abab);
        assert_eq!(broadcast8(0), 0);
    }

    #[test]
    fn pack_orders_lanes_little_endian() {
        assert_eq!(pack8(&[1, 2, 3]), 0x0003_0201);
        assert_eq!(pack8(&[]), 0);
        assert_eq!(pack8(&[0xff; 8]), u64::MAX);
    }

    #[test]
    fn zero_lanes_flags_exactly_the_zero_bytes() {
        assert_eq!(zero_byte_lanes(0), 0xff);
        assert_eq!(zero_byte_lanes(u64::MAX), 0);
        // Lanes 0, 2, 4, 5, 7 hold zero bytes.
        assert_eq!(zero_byte_lanes(0x00ff_0000_ff00_ff00), 0b1011_0101);
    }

    #[test]
    fn zero_lanes_has_no_borrow_false_positive() {
        // The textbook (w - LO) & !w & HI trick would flag byte 1 of
        // 0x0100 (the borrow out of the zero low byte turns 0x01 into
        // 0x00); the borrow-safe form must not.
        assert_eq!(zero_byte_lanes(0x0100), 0xfd, "lane 1 holds 0x01, lanes 2..8 are zero");
        assert_eq!(zero_byte_lanes(0x0101_0101_0101_0100), 0b01);
        assert_eq!(zero_byte_lanes(0x0001_0000_0100_0001), 0b1011_0110);
    }

    #[test]
    fn eq_lanes_matches_per_byte_compare() {
        let w = 0x1122_3344_5566_7788;
        assert_eq!(eq_byte_lanes(w, w), 0xff);
        assert_eq!(eq_byte_lanes(w, broadcast8(0x44)), 1 << 4);
        assert_eq!(eq_byte_lanes(w, 0), 0);
    }
}
