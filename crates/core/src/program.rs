//! FADE programs: everything a monitor loads into the accelerator.
//!
//! FADE is programmed per application by writing two memory-mapped
//! structures — the event table and the invariant register file
//! (Section 4.1) — plus the stack-update unit's call/return value
//! selection. [`FadeProgram`] bundles these with the metadata address
//! map and validates the structural constraints the hardware imposes.

use std::fmt;

use fade_isa::{EventId, EVENT_TABLE_ENTRIES};
use fade_shadow::MetadataMap;

use crate::event_table::{EventTable, EventTableEntry, FilterKind, OperandSel};
use crate::invrf::{InvId, InvRf};

/// Stack-update unit configuration: which INV registers hold the value
/// written on calls and on returns (Section 4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SuuConfig {
    /// INV register holding the on-call fill value (e.g. "allocated and
    /// uninitialized").
    pub call_inv: InvId,
    /// INV register holding the on-return fill value (e.g.
    /// "unallocated").
    pub ret_inv: InvId,
}

/// A validation error for a FADE program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramError {
    /// An entry needs more than the three comparator blocks of Figure 7.
    TooManyComparators {
        /// Offending event ID.
        id: EventId,
        /// Comparators the entry would need.
        needed: usize,
    },
    /// A multi-shot chain contains a cycle.
    ChainCycle {
        /// Event ID whose chain loops.
        id: EventId,
    },
    /// A `next_entry` pointer names an unprogrammed entry.
    BrokenChain {
        /// Event ID whose chain breaks.
        id: EventId,
        /// The missing continuation entry.
        missing: EventId,
    },
    /// A redundant-update entry lacks a valid destination or source.
    MalformedRedundantUpdate {
        /// Offending event ID.
        id: EventId,
    },
    /// An entry's operand declares zero or more than eight MD bytes.
    BadMdBytes {
        /// Offending event ID.
        id: EventId,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::TooManyComparators { id, needed } => write!(
                f,
                "event {id} needs {needed} comparators but the filter logic has 3"
            ),
            ProgramError::ChainCycle { id } => {
                write!(f, "multi-shot chain starting at event {id} contains a cycle")
            }
            ProgramError::BrokenChain { id, missing } => write!(
                f,
                "multi-shot chain of event {id} points at unprogrammed entry {missing}"
            ),
            ProgramError::MalformedRedundantUpdate { id } => write!(
                f,
                "redundant-update entry for event {id} lacks a valid source/destination"
            ),
            ProgramError::BadMdBytes { id } => {
                write!(f, "event {id} has an operand with md_bytes outside 1..=8")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// A complete FADE program.
#[derive(Clone, Debug)]
pub struct FadeProgram {
    table: EventTable,
    invariants: InvRf,
    suu: Option<SuuConfig>,
    md_map: MetadataMap,
}

impl FadeProgram {
    /// Creates an empty program over the given metadata map.
    pub fn new(md_map: MetadataMap) -> Self {
        FadeProgram {
            table: EventTable::new(),
            invariants: InvRf::new(),
            suu: None,
            md_map,
        }
    }

    /// Installs an event-table entry.
    pub fn set_entry(&mut self, id: EventId, entry: EventTableEntry) {
        self.table.set(id, entry);
    }

    /// Writes an invariant register.
    pub fn set_invariant(&mut self, id: InvId, value: u64) {
        self.invariants.write(id, value);
    }

    /// Enables the stack-update unit.
    pub fn set_suu(&mut self, suu: SuuConfig) {
        self.suu = Some(suu);
    }

    /// Disables the stack-update unit: stack updates are forwarded to
    /// the software monitor instead (ablation of Section 4.2).
    pub fn clear_suu(&mut self) {
        self.suu = None;
    }

    /// The event table.
    pub fn table(&self) -> &EventTable {
        &self.table
    }

    /// The invariant register values.
    pub fn invariants(&self) -> &InvRf {
        &self.invariants
    }

    /// Mutable access to the invariant register file (runtime
    /// memory-mapped writes, e.g. per-thread signatures).
    pub fn invariants_mut(&mut self) -> &mut InvRf {
        &mut self.invariants
    }

    /// The SUU configuration, if enabled.
    pub fn suu(&self) -> Option<SuuConfig> {
        self.suu
    }

    /// The application→metadata mapping.
    pub fn md_map(&self) -> MetadataMap {
        self.md_map
    }

    /// Checks the structural constraints the hardware imposes.
    ///
    /// # Errors
    ///
    /// Returns the first [`ProgramError`] found: comparator overuse,
    /// multi-shot chain cycles or dangling pointers, malformed
    /// redundant-update entries, or out-of-range MD byte counts.
    pub fn validate(&self) -> Result<(), ProgramError> {
        for (id, entry) in self.table.iter() {
            let needed = entry.comparators_needed();
            if needed > 3 {
                return Err(ProgramError::TooManyComparators { id, needed });
            }
            for sel in OperandSel::ALL {
                let rule = entry.operand(sel);
                if rule.valid && !(1..=8).contains(&rule.md_bytes) {
                    return Err(ProgramError::BadMdBytes { id });
                }
            }
            if let FilterKind::RedundantUpdate(_) = entry.kind {
                let d = entry.operand(OperandSel::D);
                let s1 = entry.operand(OperandSel::S1);
                let s2 = entry.operand(OperandSel::S2);
                if !d.valid || (!s1.valid && !s2.valid) {
                    return Err(ProgramError::MalformedRedundantUpdate { id });
                }
            }
            // Chain walk: detect cycles and dangling pointers.
            let mut cur = entry.next_entry;
            let mut steps = 0;
            while let Some(next) = cur {
                steps += 1;
                if steps > EVENT_TABLE_ENTRIES {
                    return Err(ProgramError::ChainCycle { id });
                }
                match self.table.entry(next) {
                    None => return Err(ProgramError::BrokenChain { id, missing: next }),
                    Some(e) => cur = e.next_entry,
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event_table::{OperandRule, RuCompose};
    use fade_isa::event_ids;

    fn program_with(entry: EventTableEntry) -> FadeProgram {
        let mut p = FadeProgram::new(MetadataMap::per_word());
        p.set_entry(event_ids::LOAD, entry);
        p
    }

    #[test]
    fn empty_program_validates() {
        assert!(FadeProgram::new(MetadataMap::per_word()).validate().is_ok());
    }

    #[test]
    fn simple_clean_check_validates() {
        let e = EventTableEntry::clean_check([
            Some(OperandRule::mem_operand(1, 0xff, InvId::new(0))),
            None,
            Some(OperandRule::reg_operand(0xff, InvId::new(0))),
        ]);
        assert!(program_with(e).validate().is_ok());
    }

    #[test]
    fn bad_md_bytes_rejected() {
        let mut rule = OperandRule::mem_operand(1, 0xff, InvId::new(0));
        rule.md_bytes = 9;
        let e = EventTableEntry::clean_check([Some(rule), None, None]);
        assert!(matches!(
            program_with(e).validate(),
            Err(ProgramError::BadMdBytes { .. })
        ));
    }

    #[test]
    fn ru_without_dest_rejected() {
        let e = EventTableEntry::redundant_update(
            [Some(OperandRule::reg_plain(0xff)), None, None],
            RuCompose::Direct,
        );
        assert!(matches!(
            program_with(e).validate(),
            Err(ProgramError::MalformedRedundantUpdate { .. })
        ));
    }

    #[test]
    fn broken_chain_rejected() {
        let e = EventTableEntry::clean_check([
            Some(OperandRule::reg_operand(0xff, InvId::new(0))),
            None,
            None,
        ])
        .with_next(EventId::new(64));
        let p = program_with(e);
        assert!(matches!(
            p.validate(),
            Err(ProgramError::BrokenChain { .. })
        ));
    }

    #[test]
    fn chain_cycle_rejected() {
        let head = EventTableEntry::clean_check([
            Some(OperandRule::reg_operand(0xff, InvId::new(0))),
            None,
            None,
        ])
        .with_next(EventId::new(64));
        let tail = EventTableEntry::clean_check([
            Some(OperandRule::reg_operand(0xff, InvId::new(0))),
            None,
            None,
        ])
        .with_ms()
        .with_next(EventId::new(64)); // points at itself
        let mut p = FadeProgram::new(MetadataMap::per_word());
        p.set_entry(event_ids::LOAD, head);
        p.set_entry(EventId::new(64), tail);
        assert!(matches!(p.validate(), Err(ProgramError::ChainCycle { .. })));
    }

    #[test]
    fn valid_two_shot_chain() {
        let head = EventTableEntry::clean_check([
            Some(OperandRule::reg_operand(0xff, InvId::new(0))),
            None,
            None,
        ])
        .with_next(EventId::new(64));
        let tail = EventTableEntry::clean_check([
            None,
            Some(OperandRule::reg_operand(0xff, InvId::new(1))),
            None,
        ])
        .with_ms();
        let mut p = FadeProgram::new(MetadataMap::per_word());
        p.set_entry(event_ids::LOAD, head);
        p.set_entry(EventId::new(64), tail);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn error_messages_are_informative() {
        let err = ProgramError::TooManyComparators {
            id: EventId::new(1),
            needed: 4,
        };
        assert!(err.to_string().contains("comparators"));
    }
}
