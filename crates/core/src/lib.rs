//! # fade — the programmable filtering accelerator
//!
//! This crate implements the paper's primary contribution: FADE, a
//! Filtering Accelerator for Decoupled Event processing (Sections 4
//! and 5).
//!
//! FADE sits between the application core (the *event producer*) and the
//! software monitor (the *unfiltered event consumer*), connected by two
//! shallow queues (Figure 1):
//!
//! ```text
//!  app ──▶ event queue (32) ──▶ [ FADE ] ──▶ unfiltered queue (16) ──▶ monitor
//!                                  │ filtered events end here
//! ```
//!
//! The accelerator contains:
//!
//! * the **Filtering Unit** — a four-stage pipeline (Event Table Read,
//!   Control, Metadata Read, Filter) programmed through a 128-entry
//!   [`EventTable`] and an [`InvRf`] (invariant register file), with
//!   three filtering modes: single-shot, multi-shot, and partial
//!   ([`FilterMode`] is an orthogonal blocking/non-blocking switch);
//! * the **Stack-Update Unit** ([`StackUpdateUnit`]) — an FSM for bulk
//!   frame metadata initialization on calls/returns;
//! * the **MD cache** ([`TagCache`]) and **M-TLB** ([`MdTlb`]) — a 4 KB
//!   metadata cache with an application-page→metadata-frame TLB;
//! * the **non-blocking extensions** (Section 5) — metadata-update logic
//!   ([`update_logic`]), the Metadata Write stage, and the Filter Store
//!   Queue ([`Fsq`]).
//!
//! The top-level [`Fade`] struct ties these together behind a
//! cycle-accurate [`Fade::tick`].
//!
//! # Example: programming a one-entry clean check
//!
//! ```
//! use fade::{EventTableEntry, FadeProgram, InvId, OperandRule};
//! use fade_isa::event_ids;
//! use fade_shadow::MetadataMap;
//!
//! // "Filter loads whose memory operand metadata equals invariant 0."
//! let mut program = FadeProgram::new(MetadataMap::per_word());
//! program.set_invariant(InvId::new(0), 0); // e.g. "not a pointer"
//! let entry = EventTableEntry::clean_check([
//!     Some(OperandRule::mem_operand(1, 0xff, InvId::new(0))),
//!     None,
//!     Some(OperandRule::reg_operand(0xff, InvId::new(0))),
//! ])
//! .with_handler(fade::HandlerPc::new(0x100));
//! program.set_entry(event_ids::LOAD, entry);
//! assert!(program.validate().is_ok());
//! ```

pub mod event_table;
pub mod fade;
pub mod filter_logic;
pub mod fsq;
pub mod invrf;
pub mod md_cache;
pub mod md_tlb;
pub mod program;
pub mod suu;
pub mod update_logic;
pub mod vector;

pub use crate::fade::{
    BatchStats, Fade, FadeConfig, FadeStats, FadeTick, FilterMode, UnfilteredEvent,
};
pub use event_table::{
    EventTable, EventTableEntry, FilterKind, HandlerPc, OperandRule, OperandSel, RuCompose,
};
pub use filter_logic::{FilterDecision, OperandMeta};
pub use fsq::{Fsq, FsqEntry, FsqFull};
pub use invrf::{InvId, InvRf, INV_REGS};
pub use md_cache::{CacheStats, TagCache, TagCacheConfig};
pub use md_tlb::MdTlb;
pub use program::{FadeProgram, ProgramError, SuuConfig};
pub use suu::StackUpdateUnit;
pub use update_logic::{NbAction, NbCond, NbCondOperand, NbUpdate};
pub use vector::{broadcast8, eq_byte_lanes, pack8, zero_byte_lanes, BlockProbe};
