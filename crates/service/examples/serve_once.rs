//! Spawn an in-process `faded`, serve one tenant session over the
//! socket, print every report line, and shut down.
//!
//! ```text
//! cargo run -p fade-service --example serve_once
//! ```

use fade_service::{temp_socket_path, Faded, Hello, ServerConfig, stream_session};
use fade_system::record_trace_prefix;
use fade_trace::{bench, encode_trace, TraceMeta};

fn main() -> std::io::Result<()> {
    let socket = temp_socket_path("example");
    let daemon = Faded::spawn(ServerConfig::new(&socket).workers(2))?;

    // Record a small gcc trace and stream it as tenant "demo".
    let b = bench::by_name("gcc").expect("gcc profile exists");
    let seed = 42;
    let (records, _instrs) = record_trace_prefix(&b, "MemLeak", seed, 30_000);
    let trace = encode_trace(&TraceMeta::new("gcc", seed), &records);

    let hello = Hello {
        seed: Some(seed),
        ..Hello::new("demo", "MemLeak")
    };
    let end = stream_session(&socket, &hello, &trace, |line| println!("{line}"))
        .expect("served session succeeds");
    println!(
        "served {} events over {} report lines",
        end.events, end.reports
    );

    daemon.shutdown();
    Ok(())
}
