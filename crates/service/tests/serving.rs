//! End-to-end acceptance suite for the `faded` daemon.
//!
//! The contract under test: a tenant streaming a `.fadet` buffer to
//! the daemon receives *byte-for-byte* the report lines an in-process
//! [`Session`] produces for the same bytes — with the in-process side
//! driven here through the public `fade_system` API only (the same
//! `SERVE_SLICE` step / drain / `baseline_cycles` / finish procedure
//! `docs/PROTOCOL.md` documents), so the equality is a real check of
//! the daemon, not a tautology. On top of that: per-connection fault
//! isolation (corrupt streams, shadow-budget overruns, panicking
//! monitors), protocol-error replies, and clean shutdown.

use std::io::Cursor;
use std::os::unix::net::UnixStream;
use std::sync::Arc;

use fade::FadeProgram;
use fade_service::protocol::{
    read_frame, write_frame, Hello, FRAME_ERROR, FRAME_FINISH, FRAME_HELLO, FRAME_TRACE,
};
use fade_service::{
    engine_name, report, send_shutdown, stream_session, temp_socket_path, ClientError, EndSummary,
    EngineSel, Faded, ServerConfig, SERVE_SLICE,
};
use fade_system::{
    baseline_cycles, record_trace_prefix, MonitorRegistry, Session, SystemConfig,
};
use fade_trace::faultinject::{FaultKind, FaultPlan};
use fade_trace::{bench, encode_trace, TraceMeta, TraceReader};

/// Records a synthetic trace and freezes it to `.fadet` bytes.
fn make_trace(bench_name: &str, monitor: &str, seed: u64, events: u64) -> Vec<u8> {
    let b = bench::by_name(bench_name).expect("benchmark exists");
    let (records, _instrs) = record_trace_prefix(&b, monitor, seed, events);
    encode_trace(&TraceMeta::new(bench_name, seed), &records)
}

/// What one tenant's session is expected to produce.
struct Expected {
    lines: Vec<String>,
    events: u64,
    instrs: u64,
    degraded: bool,
}

/// The reference serving procedure, written against the public
/// `fade_system` API only: exactly the loop `docs/PROTOCOL.md`
/// documents (step `SERVE_SLICE`, stream new reports, drain, finish
/// against `baseline_cycles`), rendered through the pure
/// `fade_service::report` line builders.
fn expected_serve(hello: &Hello, trace: Vec<u8>, registry: &Arc<MonitorRegistry>) -> Expected {
    let mut reader = TraceReader::new(Cursor::new(trace)).expect("readable trace");
    if hello.recover {
        reader = reader.with_recovery();
    }
    let bench_name = reader.meta().bench.clone();
    let b = bench::by_name(&bench_name).expect("benchmark exists");
    let cfg = hello.config(SystemConfig::fade_single_core());
    let mut session = Session::builder()
        .registry(Arc::clone(registry))
        .monitor(hello.monitor.as_str())
        .trace_source(b.clone(), Box::new(reader))
        .engine(hello.engine.engine())
        .config(cfg)
        .build()
        .expect("session builds");
    session.start_measure();

    let mut lines = Vec::new();
    let mut streamed = 0usize;
    let mut seq = 0u32;
    loop {
        session.run(SERVE_SLICE).expect("slice runs");
        for text in session.monitor().reports().iter().skip(streamed) {
            lines.push(report::violation_line(&hello.tenant, seq, text));
            seq += 1;
            streamed += 1;
        }
        if session.source_exhausted() {
            break;
        }
    }
    session.drain().expect("drain succeeds");

    let instrs = session.instrs();
    let events = session.events_seen();
    let usage = session.shadow_bytes_in_use();
    let baseline = baseline_cycles(&b, cfg.core, cfg.seed, 0, instrs);
    let run_report = session.finish(baseline).expect("finish succeeds");
    for text in run_report.violations.iter().skip(streamed) {
        lines.push(report::violation_line(&hello.tenant, seq, text));
        seq += 1;
    }
    lines.push(report::summary_line(
        &hello.tenant,
        engine_name(hello.engine),
        &run_report,
        usage,
    ));
    Expected {
        lines,
        events,
        instrs,
        degraded: run_report
            .degradation
            .as_ref()
            .is_some_and(|d| d.chunks_skipped > 0),
    }
}

/// Flips one bit in the record payload region (past the header, before
/// the trailer) so recovery has a mid-stream corrupt chunk to skip.
fn corrupt(mut bytes: Vec<u8>) -> Vec<u8> {
    let offset = bytes.len() / 2;
    let plan = FaultPlan {
        kind: FaultKind::BitFlip,
        offset: offset as u64,
        bit: 3,
        max_read: 0,
    };
    bytes = plan.apply(&bytes);
    bytes
}

/// The tentpole acceptance test: eight concurrent tenants with mixed
/// benchmarks, monitors, and engines — two of them streaming
/// fault-injected traces in recovery mode — each receiving the exact
/// line stream and END counters of its in-process reference session.
#[test]
fn eight_concurrent_tenants_are_bit_exact_with_in_process_sessions() {
    // (bench, monitor, engine, seed, events, corrupt?)
    let plan: Vec<(&str, &str, EngineSel, u64, u64, bool)> = vec![
        ("hmmer", "AddrCheck", EngineSel::Batched, 11, 40_000, false),
        ("gcc", "MemLeak", EngineSel::Batched, 12, 40_000, true),
        ("mcf", "MemCheck", EngineSel::Cycle, 13, 15_000, false),
        ("hmmer", "AtomCheck", EngineSel::Unaccelerated, 14, 20_000, false),
        ("gcc", "MemCheck", EngineSel::Batched, 15, 40_000, false),
        ("mcf", "AddrCheck", EngineSel::Batched, 16, 40_000, true),
        ("hmmer", "MemLeak", EngineSel::Batched, 17, 40_000, false),
        ("gcc", "AddrCheck", EngineSel::Cycle, 18, 15_000, false),
    ];
    let registry = Arc::new(MonitorRegistry::builtin());

    let tenants: Vec<(Hello, Vec<u8>)> = plan
        .iter()
        .enumerate()
        .map(|(i, &(bench_name, monitor, engine, seed, events, corrupt_it))| {
            let mut bytes = make_trace(bench_name, monitor, seed, events);
            if corrupt_it {
                bytes = corrupt(bytes);
            }
            let hello = Hello {
                engine,
                recover: corrupt_it,
                seed: Some(seed),
                ..Hello::new(format!("tenant-{i}"), monitor)
            };
            (hello, bytes)
        })
        .collect();

    let expected: Vec<Expected> = tenants
        .iter()
        .map(|(hello, bytes)| expected_serve(hello, bytes.clone(), &registry))
        .collect();
    // The corrupted streams must actually exercise recovery, or the
    // "fault-injected tenants degrade bit-exactly" claim is vacuous.
    for (i, (_, _, _, _, _, corrupt_it)) in plan.iter().enumerate() {
        assert_eq!(
            expected[i].degraded, *corrupt_it,
            "tenant {i}: degradation iff fault-injected"
        );
    }

    let socket = temp_socket_path("bitexact");
    let daemon = Faded::spawn(ServerConfig::new(&socket).workers(4)).expect("daemon spawns");

    let served: Vec<(Vec<String>, EndSummary)> = std::thread::scope(|scope| {
        let handles: Vec<_> = tenants
            .iter()
            .map(|(hello, bytes)| {
                let socket = &socket;
                scope.spawn(move || {
                    let mut lines = Vec::new();
                    let end = stream_session(socket, hello, bytes, |line| {
                        lines.push(line.to_string())
                    })
                    .expect("served session succeeds");
                    (lines, end)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    daemon.shutdown();

    for (i, ((lines, end), exp)) in served.iter().zip(&expected).enumerate() {
        assert_eq!(
            lines, &exp.lines,
            "tenant {i}: served line stream must be bit-exact with the in-process session"
        );
        assert_eq!(end.events, exp.events, "tenant {i}: END event count");
        assert_eq!(end.instrs, exp.instrs, "tenant {i}: END instr count");
        assert_eq!(
            end.reports as usize,
            exp.lines.len(),
            "tenant {i}: END report count"
        );
    }
}

/// An AddrCheck that panics on its first selection decision — the
/// fixture for monitor-panic isolation (mirrors the `ExperimentMatrix`
/// regression fixture, here behind a served connection).
struct PanicMonitor(fade_monitors::AddrCheck);

impl fade_monitors::Monitor for PanicMonitor {
    fn name(&self) -> &'static str {
        "PanicMonitor"
    }
    fn kind(&self) -> fade_monitors::MonitorKind {
        self.0.kind()
    }
    fn selects(&self, _instr: &fade_isa::AppInstr) -> bool {
        panic!("deliberate monitor panic (service isolation test)")
    }
    fn monitors_stack(&self) -> bool {
        self.0.monitors_stack()
    }
    fn program(&self) -> FadeProgram {
        self.0.program()
    }
    fn init_state(&self, state: &mut fade_shadow::MetadataState) {
        self.0.init_state(state)
    }
    fn classify(
        &self,
        ev: &fade_isa::InstrEvent,
        state: &fade_shadow::MetadataState,
    ) -> fade_monitors::EventClass {
        self.0.classify(ev, state)
    }
    fn apply_instr(&mut self, ev: &fade_isa::InstrEvent, state: &mut fade_shadow::MetadataState) {
        self.0.apply_instr(ev, state)
    }
    fn apply_high_level(
        &mut self,
        ev: &fade_isa::HighLevelEvent,
        state: &mut fade_shadow::MetadataState,
    ) {
        self.0.apply_high_level(ev, state)
    }
    fn apply_stack_update(
        &self,
        ev: &fade_isa::StackUpdateEvent,
        state: &mut fade_shadow::MetadataState,
    ) {
        self.0.apply_stack_update(ev, state)
    }
    fn costs(&self) -> fade_monitors::CostModel {
        self.0.costs()
    }
}

/// A panicking monitor produces one `monitor_panicked` ERROR on its
/// own connection; concurrent clean tenants — and tenants connecting
/// *afterwards* — are untouched.
#[test]
fn panicking_monitor_poisons_only_its_own_connection() {
    let mut registry = MonitorRegistry::builtin();
    registry.register(|| Box::new(PanicMonitor(fade_monitors::AddrCheck::new())));
    let socket = temp_socket_path("panic");
    let daemon = Faded::spawn(
        ServerConfig::new(&socket)
            .workers(2)
            .registry(Arc::new(registry)),
    )
    .expect("daemon spawns");

    let clean_a = make_trace("mcf", "AddrCheck", 21, 20_000);
    let poison = make_trace("gcc", "AddrCheck", 22, 20_000);
    let clean_b = make_trace("hmmer", "MemCheck", 23, 20_000);

    let (res_a, res_p, res_b) = std::thread::scope(|scope| {
        let a = scope.spawn(|| {
            stream_session(&socket, &Hello::new("clean-a", "AddrCheck"), &clean_a, |_| {})
        });
        let p = scope.spawn(|| {
            stream_session(&socket, &Hello::new("poison", "PanicMonitor"), &poison, |_| {})
        });
        let b = scope.spawn(|| {
            stream_session(&socket, &Hello::new("clean-b", "MemCheck"), &clean_b, |_| {})
        });
        (a.join().unwrap(), p.join().unwrap(), b.join().unwrap())
    });

    assert!(res_a.is_ok(), "clean sibling a: {res_a:?}");
    assert!(res_b.is_ok(), "clean sibling b: {res_b:?}");
    match res_p {
        Err(ClientError::Server(line)) => {
            assert!(line.contains(r#""error": "monitor_panicked""#), "line: {line}");
            assert!(line.contains("deliberate monitor panic"), "line: {line}");
        }
        other => panic!("expected a monitor_panicked server error, got {other:?}"),
    }

    // The daemon (and its worker that caught the panic) keeps serving.
    let after = stream_session(&socket, &Hello::new("after", "AddrCheck"), &clean_a, |_| {});
    assert!(after.is_ok(), "post-panic session: {after:?}");
    daemon.shutdown();
}

/// A tenant whose shadow map overruns its HELLO budget gets a typed
/// `shadow_budget` ERROR; the same trace without the cap still serves.
#[test]
fn shadow_budget_overrun_degrades_only_that_tenant() {
    let socket = temp_socket_path("budget");
    let daemon = Faded::spawn(ServerConfig::new(&socket).workers(2)).expect("daemon spawns");
    let trace = make_trace("gcc", "MemCheck", 31, 40_000);

    let capped = Hello {
        shadow_mem_cap: Some(4096),
        seed: Some(31),
        ..Hello::new("capped", "MemCheck")
    };
    match stream_session(&socket, &capped, &trace, |_| {}) {
        Err(ClientError::Server(line)) => {
            assert!(line.contains(r#""error": "shadow_budget""#), "line: {line}");
        }
        other => panic!("expected a shadow_budget server error, got {other:?}"),
    }

    let uncapped = Hello {
        seed: Some(31),
        ..Hello::new("uncapped", "MemCheck")
    };
    let ok = stream_session(&socket, &uncapped, &trace, |_| {});
    assert!(ok.is_ok(), "uncapped tenant after the overrun: {ok:?}");
    daemon.shutdown();
}

/// Malformed conversations get typed ERROR replies, not hangs or
/// daemon damage: wrong first frame, unsupported version, unreadable
/// trace bytes, unknown monitor, unknown benchmark, oversized trace.
#[test]
fn protocol_and_session_errors_are_typed_replies() {
    let socket = temp_socket_path("errors");
    let daemon = Faded::spawn(
        ServerConfig::new(&socket)
            .workers(1)
            .max_trace_bytes(64 * 1024),
    )
    .expect("daemon spawns");

    // TRACE before HELLO.
    {
        let mut stream = UnixStream::connect(&socket).unwrap();
        write_frame(&mut stream, FRAME_TRACE, b"too soon").unwrap();
        // The server may reply and close before this lands (EPIPE) —
        // the ERROR frame is still buffered for us either way.
        let _ = write_frame(&mut stream, FRAME_FINISH, &[]);
        let (kind, payload) = read_frame(&mut stream).unwrap().expect("a reply");
        assert_eq!(kind, FRAME_ERROR);
        let line = String::from_utf8(payload).unwrap();
        assert!(line.contains(r#""error": "protocol""#), "line: {line}");
        assert!(line.contains("expected HELLO"), "line: {line}");
    }

    // HELLO with a version this build does not speak.
    {
        let mut stream = UnixStream::connect(&socket).unwrap();
        let mut payload = Hello::new("t", "AddrCheck").encode();
        payload[0] = 9;
        write_frame(&mut stream, FRAME_HELLO, &payload).unwrap();
        let (kind, payload) = read_frame(&mut stream).unwrap().expect("a reply");
        assert_eq!(kind, FRAME_ERROR);
        let line = String::from_utf8(payload).unwrap();
        assert!(line.contains("unsupported protocol version 9"), "line: {line}");
    }

    // Bytes that are not a .fadet stream.
    {
        let err = stream_session(
            &socket,
            &Hello::new("t", "AddrCheck"),
            b"not a trace at all",
            |_| {},
        )
        .unwrap_err();
        match err {
            ClientError::Server(line) => {
                assert!(line.contains(r#""error": "trace""#), "line: {line}")
            }
            other => panic!("expected a trace error, got {other:?}"),
        }
    }

    let small = make_trace("mcf", "AddrCheck", 41, 1_000);

    // A monitor the registry does not know.
    {
        let err = stream_session(&socket, &Hello::new("t", "NoSuchMonitor"), &small, |_| {})
            .unwrap_err();
        match err {
            ClientError::Server(line) => {
                assert!(line.contains(r#""error": "build""#), "line: {line}")
            }
            other => panic!("expected a build error, got {other:?}"),
        }
    }

    // A trace whose header names an unknown benchmark.
    {
        let b = bench::by_name("mcf").unwrap();
        let (records, _) = record_trace_prefix(&b, "AddrCheck", 41, 1_000);
        let bytes = encode_trace(&TraceMeta::new("no-such-bench", 41), &records);
        let err =
            stream_session(&socket, &Hello::new("t", "AddrCheck"), &bytes, |_| {}).unwrap_err();
        match err {
            ClientError::Server(line) => {
                assert!(line.contains(r#""error": "unknown_benchmark""#), "line: {line}")
            }
            other => panic!("expected an unknown_benchmark error, got {other:?}"),
        }
    }

    // A trace larger than the per-tenant cap (backpressure bound).
    {
        let big = make_trace("gcc", "MemCheck", 42, 60_000);
        assert!(big.len() > 64 * 1024, "fixture must exceed the cap");
        let err =
            stream_session(&socket, &Hello::new("t", "MemCheck"), &big, |_| {}).unwrap_err();
        match err {
            ClientError::Server(line) => {
                assert!(line.contains(r#""error": "trace_too_large""#), "line: {line}")
            }
            other => panic!("expected a trace_too_large error, got {other:?}"),
        }
    }

    // After all that abuse, a well-formed session still serves.
    let ok = stream_session(&socket, &Hello::new("t", "AddrCheck"), &small, |_| {});
    assert!(ok.is_ok(), "daemon survives malformed conversations: {ok:?}");
    daemon.shutdown();
}

/// The admin SHUTDOWN frame stops the daemon and removes the socket
/// file; in-flight sessions drain first.
#[test]
fn shutdown_frame_drains_and_removes_the_socket() {
    let socket = temp_socket_path("shutdown");
    let daemon = Faded::spawn(ServerConfig::new(&socket).workers(2)).expect("daemon spawns");
    assert!(socket.exists(), "socket file exists while serving");

    let trace = make_trace("hmmer", "AddrCheck", 51, 20_000);
    let served = stream_session(&socket, &Hello::new("t", "AddrCheck"), &trace, |_| {});
    assert!(served.is_ok(), "session before shutdown: {served:?}");

    send_shutdown(&socket).expect("shutdown frame sends");
    daemon.wait();
    assert!(!socket.exists(), "clean shutdown removes the socket file");
}
