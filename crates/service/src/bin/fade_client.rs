//! `fade-client` — stream a `.fadet` session to a running `faded`
//! daemon and print the JSON report lines.
//!
//! ```text
//! # serve a recorded trace file
//! fade-client --socket /run/faded.sock --trace gcc.fadet --monitor MemLeak
//!
//! # record a synthetic trace on the fly and serve it
//! fade-client --socket /run/faded.sock --bench gcc --events 100000 --monitor MemCheck
//!
//! # drive a multi-tenant load test and print the throughput row
//! fade-client --socket /run/faded.sock --loadtest --tenants 8 --events 50000
//!
//! # stop the daemon
//! fade-client --socket /run/faded.sock --shutdown
//! ```

use std::process::ExitCode;

use fade_service::harness::{measure_service_throughput_at, LoadOptions};
use fade_service::{send_shutdown, stream_session, EngineSel, Hello};
use fade_system::record_trace_prefix;
use fade_trace::{bench, encode_trace, TraceMeta};

fn usage() -> ExitCode {
    eprintln!(
        "usage: fade-client --socket PATH [MODE] [OPTIONS]\n\
         \n\
         modes:\n\
         \x20 --trace FILE              stream a recorded .fadet file\n\
         \x20 --bench NAME --events N   record a synthetic trace and stream it\n\
         \x20 --loadtest                drive --tenants concurrent sessions\n\
         \x20 --shutdown                stop the daemon\n\
         \n\
         session options:\n\
         \x20 --tenant ID               tenant id (default: fade-client)\n\
         \x20 --monitor NAME            monitor to run (default: AddrCheck)\n\
         \x20 --engine cycle|batched|unaccelerated   (default: batched)\n\
         \x20 --recover                 skip corrupt chunks, report degradation\n\
         \x20 --shadow-page-budget N  --shadow-mem-cap N  --sample-period N\n\
         \x20 --sample-window N  --batch-lanes N  --seed N\n\
         \n\
         loadtest options:\n\
         \x20 --tenants N               concurrent tenants (default: 8)\n\
         \x20 --events N                events per tenant (default: 50000)"
    );
    ExitCode::from(2)
}

struct Args {
    socket: Option<String>,
    trace: Option<String>,
    bench: Option<String>,
    events: u64,
    monitor: String,
    tenant: String,
    engine: EngineSel,
    recover: bool,
    shutdown: bool,
    loadtest: bool,
    tenants: usize,
    shadow_page_budget: Option<u64>,
    shadow_mem_cap: Option<u64>,
    sample_period: Option<u64>,
    sample_window: Option<u64>,
    batch_lanes: Option<u32>,
    seed: Option<u64>,
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut a = Args {
        socket: None,
        trace: None,
        bench: None,
        events: 50_000,
        monitor: "AddrCheck".into(),
        tenant: "fade-client".into(),
        engine: EngineSel::Batched,
        recover: false,
        shutdown: false,
        loadtest: false,
        tenants: 8,
        shadow_page_budget: None,
        shadow_mem_cap: None,
        sample_period: None,
        sample_window: None,
        batch_lanes: None,
        seed: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> Result<String, ExitCode> {
            args.next().ok_or_else(|| {
                eprintln!("fade-client: {name} needs a value");
                ExitCode::from(2)
            })
        };
        fn num<T: std::str::FromStr>(name: &str, v: String) -> Result<T, ExitCode> {
            v.parse().map_err(|_| {
                eprintln!("fade-client: {name} needs a number, got {v:?}");
                ExitCode::from(2)
            })
        }
        match arg.as_str() {
            "--socket" => a.socket = Some(value("--socket")?),
            "--trace" => a.trace = Some(value("--trace")?),
            "--bench" => a.bench = Some(value("--bench")?),
            "--events" => a.events = num("--events", value("--events")?)?,
            "--monitor" => a.monitor = value("--monitor")?,
            "--tenant" => a.tenant = value("--tenant")?,
            "--engine" => {
                let v = value("--engine")?;
                a.engine = EngineSel::parse(&v).ok_or_else(|| {
                    eprintln!("fade-client: unknown engine {v:?}");
                    ExitCode::from(2)
                })?;
            }
            "--recover" => a.recover = true,
            "--shutdown" => a.shutdown = true,
            "--loadtest" => a.loadtest = true,
            "--tenants" => a.tenants = num("--tenants", value("--tenants")?)?,
            "--shadow-page-budget" => {
                a.shadow_page_budget = Some(num("--shadow-page-budget", value("--shadow-page-budget")?)?)
            }
            "--shadow-mem-cap" => {
                a.shadow_mem_cap = Some(num("--shadow-mem-cap", value("--shadow-mem-cap")?)?)
            }
            "--sample-period" => {
                a.sample_period = Some(num("--sample-period", value("--sample-period")?)?)
            }
            "--sample-window" => {
                a.sample_window = Some(num("--sample-window", value("--sample-window")?)?)
            }
            "--batch-lanes" => a.batch_lanes = Some(num("--batch-lanes", value("--batch-lanes")?)?),
            "--seed" => a.seed = Some(num("--seed", value("--seed")?)?),
            "--help" | "-h" => return Err(usage()),
            other => {
                eprintln!("fade-client: unknown argument {other:?}");
                return Err(usage());
            }
        }
    }
    Ok(a)
}

fn main() -> ExitCode {
    let a = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };
    let Some(socket) = a.socket.as_deref() else {
        return usage();
    };
    let socket = std::path::Path::new(socket);

    if a.shutdown {
        return match send_shutdown(socket) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("fade-client: shutdown failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if a.loadtest {
        let opts = LoadOptions {
            tenants: a.tenants,
            events_per_tenant: a.events,
            engine: a.engine,
            ..LoadOptions::default()
        };
        return match measure_service_throughput_at(socket, &opts) {
            Ok(r) => {
                println!(
                    "{{\"tenants\": {}, \"events\": {}, \"reports\": {}, \
                     \"events_per_sec_aggregate\": {:.0}, \"p50_latency_s\": {:.4}, \
                     \"p99_latency_s\": {:.4}, \"wall_s\": {:.3}}}",
                    r.tenants,
                    r.events,
                    r.reports,
                    r.aggregate_rate(),
                    r.p50_latency_s,
                    r.p99_latency_s,
                    r.wall_s
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("fade-client: loadtest failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    // Single-session mode: a trace file, or a synthetic recording.
    let trace: Vec<u8> = if let Some(path) = &a.trace {
        match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) => {
                eprintln!("fade-client: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else if let Some(name) = &a.bench {
        let Some(b) = bench::by_name(name) else {
            eprintln!("fade-client: unknown benchmark {name:?}");
            return ExitCode::FAILURE;
        };
        let seed = a.seed.unwrap_or(42);
        let (records, _instrs) = record_trace_prefix(&b, &a.monitor, seed, a.events);
        encode_trace(&TraceMeta::new(name, seed), &records)
    } else {
        return usage();
    };

    let hello = Hello {
        engine: a.engine,
        recover: a.recover,
        shadow_page_budget: a.shadow_page_budget,
        shadow_mem_cap: a.shadow_mem_cap,
        sample_period: a.sample_period,
        sample_window: a.sample_window,
        batch_lanes: a.batch_lanes,
        seed: a.seed,
        ..Hello::new(a.tenant.clone(), a.monitor.clone())
    };
    match stream_session(socket, &hello, &trace, |line| println!("{line}")) {
        Ok(end) => {
            eprintln!(
                "fade-client: done — {} events, {} instrs, {} reports",
                end.events, end.instrs, end.reports
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fade-client: {e}");
            ExitCode::FAILURE
        }
    }
}
