//! `faded` — the FADE monitoring daemon.
//!
//! ```text
//! faded --socket /run/faded.sock [--workers N] [--max-trace-bytes N]
//! ```
//!
//! Binds the unix-domain socket and serves tenant sessions until a
//! client sends the admin SHUTDOWN frame (`fade-client --shutdown`).

use std::process::ExitCode;

use fade_service::{Faded, ServerConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: faded --socket PATH [--workers N] [--max-trace-bytes N]\n\
         \n\
         Serve FADE monitoring sessions on a unix-domain socket.\n\
         Stop with: fade-client --socket PATH --shutdown"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut socket: Option<String> = None;
    let mut workers: Option<usize> = None;
    let mut max_trace_bytes: Option<usize> = None;
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> Option<String> {
            let v = args.next();
            if v.is_none() {
                eprintln!("faded: {name} needs a value");
            }
            v
        };
        match arg.as_str() {
            "--socket" => socket = value("--socket"),
            "--workers" => match value("--workers").map(|v| v.parse()) {
                Some(Ok(n)) => workers = Some(n),
                _ => return usage(),
            },
            "--max-trace-bytes" => match value("--max-trace-bytes").map(|v| v.parse()) {
                Some(Ok(n)) => max_trace_bytes = Some(n),
                _ => return usage(),
            },
            "--help" | "-h" => return usage(),
            other => {
                eprintln!("faded: unknown argument {other:?}");
                return usage();
            }
        }
    }
    let Some(socket) = socket else {
        return usage();
    };

    let mut cfg = ServerConfig::new(&socket);
    if let Some(n) = workers {
        cfg = cfg.workers(n);
    }
    if let Some(n) = max_trace_bytes {
        cfg = cfg.max_trace_bytes(n);
    }
    let workers = cfg.workers;
    match Faded::spawn(cfg) {
        Ok(daemon) => {
            eprintln!("faded: serving on {socket} with {workers} workers");
            daemon.wait();
            eprintln!("faded: shut down");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("faded: cannot bind {socket}: {e}");
            ExitCode::FAILURE
        }
    }
}
