//! The `faded` daemon: a unix-domain-socket server multiplexing many
//! concurrent tenant monitoring sessions over a fixed worker pool.
//!
//! # Architecture
//!
//! One *accept* thread owns the listener. Each accepted connection
//! gets a lightweight *framing* thread that speaks the protocol
//! (HELLO, then streamed TRACE bytes, then FINISH) and buffers the
//! tenant's `.fadet` bytes — bounded by
//! [`ServerConfig::max_trace_bytes`], the backpressure rule of
//! `docs/PROTOCOL.md`. At FINISH the buffered trace becomes one job on
//! the shared [`WorkerPool`] (the work-stealing core extracted from
//! `fade_bench::ExperimentMatrix`): the job builds a completely
//! ordinary [`Session`] over the bytes, runs it to exhaustion, and
//! streams violation lines, a summary line, and an END frame back.
//!
//! Store-and-forward (rather than decoding mid-stream) is a deliberate
//! choice: the session consumes the bytes through the *same*
//! [`fade_trace::TraceReader`] path — recovery accounting included —
//! that an in-process replay uses, so per-tenant results are bit-exact
//! with a local [`Session`] by construction, and a slow client can
//! never pin one of the pool's workers.
//!
//! # Isolation
//!
//! Every per-tenant failure — corrupt header, unknown monitor or
//! benchmark, shadow-budget overrun, a *panicking monitor* — converts
//! to one typed [`FRAME_ERROR`] reply on that tenant's connection and
//! nothing else: the session catches monitor panics
//! ([`fade_system::SessionRunError::MonitorPanicked`]), the pool's
//! job guard catches everything the session does not, and the daemon,
//! its workers, and every other tenant keep serving.

use std::io::{self, BufReader, BufWriter, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use fade_system::{
    baseline_cycles, MonitorRegistry, Session, SessionError, SessionRunError, SystemConfig,
    WorkerPool,
};
use fade_trace::{TraceFileError, TraceReader};

use crate::protocol::{
    read_frame, write_frame, EndSummary, EngineSel, Hello, ProtocolError,
    DEFAULT_MAX_TRACE_BYTES, FRAME_END, FRAME_ERROR, FRAME_FINISH, FRAME_HELLO, FRAME_REPORT,
    FRAME_SHUTDOWN, FRAME_TRACE,
};
use crate::report;

/// Application-instruction granularity the serving loop steps a
/// session at. Part of the serving contract: an in-process session
/// stepped at the same granularity (then drained and finished) is
/// bit-exact with the daemon — the integration suite drives exactly
/// this loop.
pub const SERVE_SLICE: u64 = 65_536;

/// Everything a [`Faded`] daemon is configured with.
pub struct ServerConfig {
    /// Path the unix-domain socket binds at (replaced if present,
    /// removed again on clean shutdown).
    pub socket: PathBuf,
    /// Worker threads in the session pool.
    pub workers: usize,
    /// Per-tenant cap on buffered `.fadet` bytes; a stream exceeding
    /// it gets a `trace_too_large` error reply.
    pub max_trace_bytes: usize,
    /// Monitor registry sessions resolve names in (the builtin five
    /// by default; hosts may register out-of-tree monitors).
    pub registry: Arc<MonitorRegistry>,
    /// Base system configuration tenants' HELLO knobs overlay.
    pub base_config: SystemConfig,
}

impl ServerConfig {
    /// A config with the given socket path and defaults everywhere
    /// else: one worker per available core, the builtin registry,
    /// [`SystemConfig::fade_single_core`].
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        ServerConfig {
            socket: socket.into(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2),
            max_trace_bytes: DEFAULT_MAX_TRACE_BYTES,
            registry: Arc::new(MonitorRegistry::builtin()),
            base_config: SystemConfig::fade_single_core(),
        }
    }

    /// Replaces the worker count (clamped to at least 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Replaces the monitor registry.
    pub fn registry(mut self, registry: Arc<MonitorRegistry>) -> Self {
        self.registry = registry;
        self
    }

    /// Replaces the per-tenant trace byte cap.
    pub fn max_trace_bytes(mut self, bytes: usize) -> Self {
        self.max_trace_bytes = bytes;
        self
    }
}

/// A running `faded` daemon. Dropping the handle (or calling
/// [`Faded::shutdown`]) stops intake, drains every in-flight session,
/// joins the workers, and removes the socket file.
pub struct Faded {
    socket: PathBuf,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl Faded {
    /// Binds the socket and starts serving on background threads.
    /// A stale socket file at the path is replaced.
    pub fn spawn(cfg: ServerConfig) -> io::Result<Faded> {
        let _ = std::fs::remove_file(&cfg.socket);
        let listener = UnixListener::bind(&cfg.socket)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let socket = cfg.socket.clone();
        let flag = Arc::clone(&shutdown);
        let accept = std::thread::spawn(move || accept_loop(listener, cfg, flag));
        Ok(Faded {
            socket,
            shutdown,
            accept: Some(accept),
        })
    }

    /// The socket path clients connect to.
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// Blocks until the daemon shuts down (a client sent
    /// [`FRAME_SHUTDOWN`], or another thread dropped the handle's
    /// clone of the shutdown flag — in practice: the `faded` binary
    /// parks here).
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// Requests shutdown and blocks until every accepted connection
    /// and queued session has drained and the socket file is removed.
    pub fn shutdown(mut self) {
        self.request_shutdown();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = UnixStream::connect(&self.socket);
    }
}

impl Drop for Faded {
    fn drop(&mut self) {
        if let Some(h) = self.accept.take() {
            self.request_shutdown();
            let _ = h.join();
        }
    }
}

/// State shared by the accept loop and every connection thread.
struct Shared {
    pool: WorkerPool,
    registry: Arc<MonitorRegistry>,
    base_config: SystemConfig,
    max_trace_bytes: usize,
    shutdown: Arc<AtomicBool>,
    socket: PathBuf,
}

impl Shared {
    /// Flags shutdown and wakes the accept loop.
    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = UnixStream::connect(&self.socket);
    }
}

fn accept_loop(listener: UnixListener, cfg: ServerConfig, shutdown: Arc<AtomicBool>) {
    let shared = Arc::new(Shared {
        pool: WorkerPool::new(cfg.workers),
        registry: cfg.registry,
        base_config: cfg.base_config,
        max_trace_bytes: cfg.max_trace_bytes,
        shutdown,
        socket: cfg.socket.clone(),
    });
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(&shared);
        conns.retain(|h| !h.is_finished());
        conns.push(std::thread::spawn(move || handle_connection(stream, &shared)));
    }
    // Graceful drain: no new connections; every accepted conversation
    // finishes framing, every queued session runs to its END frame.
    for h in conns {
        let _ = h.join();
    }
    shared.pool.wait_idle();
    let _ = std::fs::remove_file(&cfg.socket);
}

/// Sends a typed error reply, ignoring transport failures (the client
/// may already be gone; the error is for *it*, not for us).
fn send_error(stream: &UnixStream, kind: &str, detail: &str) {
    let line = report::error_line(kind, detail);
    let mut w = stream;
    let _ = write_frame(&mut w, FRAME_ERROR, line.as_bytes());
    let _ = w.flush();
}

/// The framing half of one connection: speak
/// `HELLO (TRACE)* FINISH`, then hand the buffered bytes to the pool.
fn handle_connection(stream: UnixStream, shared: &Arc<Shared>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);

    // First frame: HELLO (or an admin SHUTDOWN).
    let hello = match read_frame(&mut reader) {
        Ok(Some((FRAME_HELLO, payload))) => match Hello::decode(&payload) {
            Ok(h) => h,
            Err(e) => return send_error(&stream, "protocol", &e.to_string()),
        },
        Ok(Some((FRAME_SHUTDOWN, _))) => return shared.request_shutdown(),
        Ok(Some((kind, _))) => {
            let e = ProtocolError::UnexpectedFrame {
                got: kind,
                expected: "HELLO",
            };
            return send_error(&stream, "protocol", &e.to_string());
        }
        Ok(None) => return,
        Err(e) => return send_error(&stream, "protocol", &e.to_string()),
    };

    // Trace intake, bounded by the backpressure cap.
    let mut trace: Vec<u8> = Vec::new();
    loop {
        match read_frame(&mut reader) {
            Ok(Some((FRAME_TRACE, payload))) => {
                if trace.len() + payload.len() > shared.max_trace_bytes {
                    return send_error(
                        &stream,
                        "trace_too_large",
                        &format!(
                            "buffered trace exceeds the per-tenant cap of {} bytes",
                            shared.max_trace_bytes
                        ),
                    );
                }
                trace.extend_from_slice(&payload);
            }
            Ok(Some((FRAME_FINISH, _))) => break,
            Ok(Some((FRAME_SHUTDOWN, _))) => return shared.request_shutdown(),
            Ok(Some((kind, _))) => {
                let e = ProtocolError::UnexpectedFrame {
                    got: kind,
                    expected: "TRACE or FINISH",
                };
                return send_error(&stream, "protocol", &e.to_string());
            }
            // Client vanished before FINISH: nothing to run.
            Ok(None) => return,
            Err(e) => return send_error(&stream, "protocol", &e.to_string()),
        }
    }

    // The session is pool work from here; this framing thread is done.
    // (The pool's job guard is the backstop — `serve_session` already
    // returns every expected failure as a typed error.)
    let job_shared = Arc::clone(shared);
    shared
        .pool
        .submit(move || run_tenant(&hello, trace, stream, &job_shared));
}

/// Pool job: run one tenant's session and stream its replies.
fn run_tenant(hello: &Hello, trace: Vec<u8>, stream: UnixStream, shared: &Shared) {
    let mut out = BufWriter::new(stream);
    // A dead client must not abort the session (its fate is its own);
    // once a write fails we stop writing but keep the session's
    // accounting intact.
    let mut broken = false;
    let mut reports = 0u32;
    let outcome = serve_session(
        hello,
        trace,
        &shared.registry,
        shared.base_config,
        &mut |line| {
            if !broken {
                broken = write_frame(&mut out, FRAME_REPORT, line.as_bytes()).is_err();
                reports += 1;
            }
        },
    );
    match outcome {
        Ok(mut end) => {
            end.reports = reports;
            let _ = write_frame(&mut out, FRAME_END, &end.encode());
        }
        Err(e) => {
            let _ = write_frame(&mut out, FRAME_ERROR, report::error_line(e.kind(), &e.to_string()).as_bytes());
        }
    }
    let _ = out.flush();
}

/// Why one tenant's session failed. Maps 1:1 to the `error` field of
/// the ERROR reply (see [`TenantError::kind`]).
#[derive(Debug)]
pub enum TenantError {
    /// The streamed bytes are not a readable `.fadet` stream (a
    /// corrupt header is unrecoverable even in recovery mode).
    Trace(TraceFileError),
    /// The trace header names a benchmark this build does not know.
    UnknownBench(String),
    /// The session failed to build (unknown monitor, invalid
    /// program).
    Build(SessionError),
    /// The session failed mid-run: monitor panic, source failure, or
    /// shadow-budget overrun.
    Run(SessionRunError),
}

impl TenantError {
    /// The stable machine-matchable error tag of the ERROR reply.
    pub fn kind(&self) -> &'static str {
        match self {
            TenantError::Trace(_) => "trace",
            TenantError::UnknownBench(_) => "unknown_benchmark",
            TenantError::Build(_) => "build",
            TenantError::Run(SessionRunError::MonitorPanicked { .. }) => "monitor_panicked",
            TenantError::Run(SessionRunError::Source(_)) => "source",
            TenantError::Run(SessionRunError::ShadowBudget(_)) => "shadow_budget",
        }
    }
}

impl std::fmt::Display for TenantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TenantError::Trace(e) => write!(f, "unreadable trace stream: {e}"),
            TenantError::UnknownBench(name) => write!(f, "unknown benchmark {name:?} in trace header"),
            TenantError::Build(e) => write!(f, "session build failed: {e}"),
            TenantError::Run(e) => write!(f, "session run failed: {e}"),
        }
    }
}

impl std::error::Error for TenantError {}

/// Runs one tenant session over buffered `.fadet` bytes, emitting the
/// JSON-lines report stream through `emit` — violation lines as the
/// session produces them, one summary line last.
///
/// This is *the* serving procedure (the daemon calls exactly this),
/// written against the public [`Session`] API so its equivalence with
/// an in-process session is structural: build with
/// [`fade_system::SessionBuilder::trace_source`] over a
/// [`TraceReader`] (recovering when the HELLO asked), step
/// [`SERVE_SLICE`] instructions at a time, drain, and finish against
/// [`baseline_cycles`].
pub fn serve_session(
    hello: &Hello,
    trace: Vec<u8>,
    registry: &Arc<MonitorRegistry>,
    base_config: SystemConfig,
    emit: &mut dyn FnMut(&str),
) -> Result<EndSummary, TenantError> {
    let mut reader = TraceReader::new(io::Cursor::new(trace)).map_err(TenantError::Trace)?;
    if hello.recover {
        reader = reader.with_recovery();
    }
    let bench_name = reader.meta().bench.clone();
    let bench = fade_trace::bench::by_name(&bench_name)
        .ok_or(TenantError::UnknownBench(bench_name))?;
    let cfg = hello.config(base_config);
    let mut session = Session::builder()
        .registry(Arc::clone(registry))
        .monitor(hello.monitor.as_str())
        .trace_source(bench.clone(), Box::new(reader))
        .engine(hello.engine.engine())
        .config(cfg)
        .build()
        .map_err(TenantError::Build)?;
    session.start_measure();

    let mut streamed = 0usize;
    let mut seq = 0u32;
    loop {
        session.run(SERVE_SLICE).map_err(TenantError::Run)?;
        for text in session.monitor().reports().iter().skip(streamed) {
            emit(&report::violation_line(&hello.tenant, seq, text));
            seq += 1;
            streamed += 1;
        }
        if session.source_exhausted() {
            break;
        }
    }
    // Everything still in flight gets handled, whatever the engine —
    // a served trace is monitored to its last event.
    session.drain().map_err(TenantError::Run)?;

    let instrs = session.instrs();
    let events = session.events_seen();
    let usage = session.shadow_bytes_in_use();
    let baseline = baseline_cycles(&bench, cfg.core, cfg.seed, 0, instrs);
    let run_report = session.finish(baseline).map_err(TenantError::Run)?;
    for text in run_report.violations.iter().skip(streamed) {
        emit(&report::violation_line(&hello.tenant, seq, text));
        seq += 1;
    }
    emit(&report::summary_line(
        &hello.tenant,
        engine_name(hello.engine),
        &run_report,
        usage,
    ));
    seq += 1;
    Ok(EndSummary {
        events,
        instrs,
        reports: seq,
    })
}

/// The engine's wire name in summary lines.
pub fn engine_name(engine: EngineSel) -> &'static str {
    match engine {
        EngineSel::Cycle => "cycle",
        EngineSel::Batched => "batched",
        EngineSel::Unaccelerated => "unaccelerated",
    }
}

/// Connects to a `faded` socket and requests shutdown.
pub fn send_shutdown(socket: &Path) -> io::Result<()> {
    let mut stream = UnixStream::connect(socket)?;
    write_frame(&mut stream, FRAME_SHUTDOWN, &[])
}
