//! Load harness: drive a `faded` daemon with N concurrent tenants and
//! measure sustained aggregate event throughput and report latency.
//!
//! [`measure_service_throughput`] spawns an in-process daemon on a
//! temporary socket; [`measure_service_throughput_at`] points the same
//! load at an already-running daemon (what the CI smoke step does with
//! the real `faded` binary).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use fade_system::record_trace_prefix;
use fade_trace::{bench, encode_trace, TraceMeta};

use crate::client::ClientError;
use crate::protocol::{
    read_frame, write_frame, EngineSel, Hello, FRAME_END, FRAME_ERROR, FRAME_FINISH, FRAME_HELLO,
    FRAME_REPORT, FRAME_TRACE,
};
use crate::server::{engine_name, Faded, ServerConfig};

/// The (benchmark, monitor) mix tenants cycle through — one point per
/// FADE monitor class so the load is heterogeneous, like real
/// multi-tenant traffic.
pub const LOAD_POINTS: [(&str, &str); 4] = [
    ("hmmer", "AddrCheck"),
    ("gcc", "MemLeak"),
    ("mcf", "MemCheck"),
    ("hmmer", "AtomCheck"),
];

/// Knobs for one load run.
#[derive(Clone, Copy, Debug)]
pub struct LoadOptions {
    /// Concurrent tenant connections.
    pub tenants: usize,
    /// Daemon worker threads (only used when the harness spawns the
    /// daemon itself).
    pub workers: usize,
    /// Monitored events recorded into each tenant's trace.
    pub events_per_tenant: u64,
    /// Engine every tenant requests.
    pub engine: EngineSel,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            tenants: 8,
            workers: 4,
            events_per_tenant: 50_000,
            engine: EngineSel::Batched,
        }
    }
}

/// What one load run measured.
#[derive(Clone, Debug)]
pub struct ServiceThroughputReport {
    /// Concurrent tenant connections driven.
    pub tenants: usize,
    /// Daemon worker threads serving them.
    pub workers: usize,
    /// Engine the tenants requested.
    pub engine: &'static str,
    /// Total monitored events across all tenants.
    pub events: u64,
    /// Total application instructions across all tenants.
    pub instrs: u64,
    /// Total REPORT lines received across all tenants.
    pub reports: u64,
    /// Wall-clock seconds from first connect to last END.
    pub wall_s: f64,
    /// Median FINISH→END latency (seconds).
    pub p50_latency_s: f64,
    /// 99th-percentile FINISH→END latency (seconds).
    pub p99_latency_s: f64,
    /// Worst FINISH→END latency (seconds).
    pub max_latency_s: f64,
}

impl ServiceThroughputReport {
    /// Sustained aggregate throughput in monitored events per second.
    pub fn aggregate_rate(&self) -> f64 {
        self.events as f64 / self.wall_s
    }
}

static SOCKET_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A collision-free socket path under the system temp directory.
pub fn temp_socket_path(tag: &str) -> PathBuf {
    let seq = SOCKET_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("faded-{tag}-{}-{seq}.sock", std::process::id()))
}

/// One tenant's full conversation, timing FINISH-sent → END-received
/// (the report latency the user of a busy daemon observes: how long
/// after submitting a complete trace the verdict arrives).
fn timed_conversation(
    socket: &Path,
    hello: &Hello,
    trace: &[u8],
) -> Result<(u64, u64, u64, f64), ClientError> {
    let mut stream = std::os::unix::net::UnixStream::connect(socket)?;
    write_frame(&mut stream, FRAME_HELLO, &hello.encode()).map_err(ClientError::Io)?;
    for chunk in trace.chunks(crate::client::TRACE_CHUNK) {
        write_frame(&mut stream, FRAME_TRACE, chunk).map_err(ClientError::Io)?;
    }
    write_frame(&mut stream, FRAME_FINISH, &[]).map_err(ClientError::Io)?;
    let finish_at = Instant::now();
    let mut reader = std::io::BufReader::new(stream);
    let mut reports = 0u64;
    loop {
        match read_frame(&mut reader)? {
            Some((FRAME_REPORT, _)) => reports += 1,
            Some((FRAME_END, payload)) => {
                let end = crate::protocol::EndSummary::decode(&payload)
                    .map_err(|e| ClientError::Frame(e.into()))?;
                let latency = finish_at.elapsed().as_secs_f64();
                return Ok((end.events, end.instrs, reports, latency));
            }
            Some((FRAME_ERROR, payload)) => {
                return Err(ClientError::Server(
                    String::from_utf8_lossy(&payload).into_owned(),
                ))
            }
            Some((kind, _)) => return Err(ClientError::UnexpectedFrame(kind)),
            None => return Err(ClientError::ClosedEarly),
        }
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (((sorted.len() - 1) as f64) * p).ceil() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Pre-encodes one `.fadet` buffer per tenant, cycling [`LOAD_POINTS`].
fn tenant_traces(opts: &LoadOptions) -> Vec<(Hello, Vec<u8>)> {
    (0..opts.tenants)
        .map(|i| {
            let (bench_name, monitor) = LOAD_POINTS[i % LOAD_POINTS.len()];
            let b = bench::by_name(bench_name).expect("load point benchmark exists");
            let seed = 1000 + i as u64;
            let (records, _instrs) =
                record_trace_prefix(&b, monitor, seed, opts.events_per_tenant);
            let bytes = encode_trace(&TraceMeta::new(bench_name, seed), &records);
            let hello = Hello {
                engine: opts.engine,
                seed: Some(seed),
                ..Hello::new(format!("tenant-{i}"), monitor)
            };
            (hello, bytes)
        })
        .collect()
}

/// Drives `opts.tenants` concurrent sessions against the daemon at
/// `socket` and aggregates the result. Every tenant must succeed — a
/// load run with failed tenants is not a throughput number.
pub fn measure_service_throughput_at(
    socket: &Path,
    opts: &LoadOptions,
) -> Result<ServiceThroughputReport, ClientError> {
    let sessions = tenant_traces(opts);
    let started = Instant::now();
    let outcomes: Vec<Result<(u64, u64, u64, f64), ClientError>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = sessions
                .iter()
                .map(|(hello, trace)| {
                    scope.spawn(move || timed_conversation(socket, hello, trace))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("tenant thread must not panic"))
                .collect()
        });
    let wall_s = started.elapsed().as_secs_f64();
    let (mut events, mut instrs, mut reports) = (0u64, 0u64, 0u64);
    let mut latencies = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        let (e, i, r, l) = outcome?;
        events += e;
        instrs += i;
        reports += r;
        latencies.push(l);
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    Ok(ServiceThroughputReport {
        tenants: opts.tenants,
        workers: opts.workers,
        engine: engine_name(opts.engine),
        events,
        instrs,
        reports,
        wall_s,
        p50_latency_s: percentile(&latencies, 0.50),
        p99_latency_s: percentile(&latencies, 0.99),
        max_latency_s: percentile(&latencies, 1.0),
    })
}

/// Spawns an in-process daemon on a temporary socket, runs
/// [`measure_service_throughput_at`] against it, and shuts it down.
pub fn measure_service_throughput(
    opts: &LoadOptions,
) -> Result<ServiceThroughputReport, ClientError> {
    let socket = temp_socket_path("load");
    let daemon = Faded::spawn(ServerConfig::new(&socket).workers(opts.workers))
        .map_err(ClientError::Io)?;
    let result = measure_service_throughput_at(&socket, opts);
    daemon.shutdown();
    result
}
