//! `faded` — a multi-tenant monitoring service over streamed `.fadet`
//! sessions.
//!
//! The FADE pipeline so far runs monitoring sessions *in process*:
//! build a [`fade_system::Session`], feed it a trace, read the report.
//! This crate turns that into a *service*: a daemon ([`Faded`]) that
//! accepts framed session requests over a unix-domain socket, runs
//! each tenant's session on a shared work-stealing worker pool, and
//! streams back violation reports and a timing summary as JSON lines.
//!
//! The pieces:
//!
//! * [`protocol`] — the wire format: length-prefixed frames, the HELLO
//!   handshake (tenant id, monitor, engine, `SystemConfig` knobs), the
//!   END counters. Specified in `docs/PROTOCOL.md`.
//! * [`server`] — the daemon. One framing thread per connection, one
//!   [`fade_system::WorkerPool`] job per session;
//!   [`serve_session`] is the (public, testable) serving procedure.
//! * [`report`] — the JSON report lines, built on the shared
//!   [`fade_report`] writer.
//! * [`client`] — [`stream_session`], the client-side conversation.
//! * [`harness`] — [`measure_service_throughput`]: N concurrent
//!   tenants, aggregate Mev/s and p50/p99 report latency.
//!
//! Per-tenant isolation is the design invariant: a corrupt stream, an
//! over-budget shadow map, or a panicking monitor degrades *that
//! tenant's connection* to a typed error reply — the daemon and every
//! other tenant keep serving.
//!
//! ```no_run
//! use fade_service::{Faded, Hello, ServerConfig, stream_session};
//!
//! let daemon = Faded::spawn(ServerConfig::new("/tmp/faded.sock"))?;
//! let trace: Vec<u8> = std::fs::read("gcc.fadet")?;
//! let end = stream_session(
//!     daemon.socket(),
//!     &Hello::new("tenant-0", "MemLeak"),
//!     &trace,
//!     |line| println!("{line}"),
//! ).unwrap();
//! println!("monitored {} events", end.events);
//! daemon.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod client;
pub mod harness;
pub mod protocol;
pub mod report;
pub mod server;

pub use client::{stream_session, ClientError, TRACE_CHUNK};
pub use harness::{
    measure_service_throughput, measure_service_throughput_at, temp_socket_path, LoadOptions,
    ServiceThroughputReport, LOAD_POINTS,
};
pub use protocol::{
    EndSummary, EngineSel, FrameError, Hello, ProtocolError, DEFAULT_MAX_TRACE_BYTES,
    MAX_FRAME_PAYLOAD, PROTOCOL_VERSION,
};
pub use server::{
    engine_name, send_shutdown, serve_session, Faded, ServerConfig, TenantError, SERVE_SLICE,
};
