//! The `faded` wire protocol: length-prefixed frames over a
//! unix-domain stream socket.
//!
//! Layout of one frame (all integers little-endian):
//!
//! ```text
//! kind: u8    len: u32    payload: len bytes
//! ```
//!
//! A client conversation is `HELLO (TRACE)* FINISH`; the server
//! answers with `(REPORT)* END`, or `ERROR` followed by connection
//! close at the first failure. The full specification — including the
//! HELLO payload layout, version negotiation, error replies and
//! backpressure rules — lives in `docs/PROTOCOL.md`; the constants and
//! codecs here are its single in-tree implementation.

use std::io::{self, Read, Write};

use fade_system::{Engine, SystemConfig};

/// Protocol version carried in the first byte of every HELLO payload.
/// A server refuses versions it does not speak with a typed error
/// reply (never by guessing).
pub const PROTOCOL_VERSION: u8 = 1;

/// Hard ceiling on one frame's payload (64 MiB). Anything larger is a
/// protocol error: frames are buffered whole, so the bound is what
/// keeps one client from ballooning daemon memory with a single
/// length word.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 26;

/// Default per-tenant cap on buffered `.fadet` bytes (256 MiB) — the
/// store-and-forward backpressure bound (see `docs/PROTOCOL.md`).
pub const DEFAULT_MAX_TRACE_BYTES: usize = 1 << 28;

/// Client → server: session handshake (must be the first frame).
pub const FRAME_HELLO: u8 = 0x01;
/// Client → server: a run of raw `.fadet` bytes (any chunking).
pub const FRAME_TRACE: u8 = 0x02;
/// Client → server: end of trace; run the session and report.
pub const FRAME_FINISH: u8 = 0x03;
/// Client → server (admin): stop accepting, drain, exit.
pub const FRAME_SHUTDOWN: u8 = 0x7F;
/// Server → client: one JSON report line (violation or summary).
pub const FRAME_REPORT: u8 = 0x11;
/// Server → client: session complete; binary counters payload.
pub const FRAME_END: u8 = 0x12;
/// Server → client: typed failure (JSON payload); connection closes.
pub const FRAME_ERROR: u8 = 0x13;

/// Sentinel meaning "knob not set" in HELLO's u64 fields.
const U64_UNSET: u64 = u64::MAX;
/// Sentinel meaning "knob not set" in HELLO's u32 fields.
const U32_UNSET: u32 = u32::MAX;

/// Why a frame or HELLO payload failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// The payload ended before a field it promised.
    Truncated(&'static str),
    /// HELLO carried a protocol version this build does not speak.
    UnsupportedVersion(u8),
    /// A frame kind outside the specification.
    UnknownFrame(u8),
    /// A frame arrived out of order (e.g. TRACE before HELLO).
    UnexpectedFrame {
        /// The frame kind that arrived.
        got: u8,
        /// What the conversation state allowed.
        expected: &'static str,
    },
    /// A frame's length word exceeded [`MAX_FRAME_PAYLOAD`].
    OversizedFrame(u64),
    /// HELLO's engine selector byte is not one of the three engines.
    UnknownEngine(u8),
    /// A HELLO string field is not UTF-8.
    BadUtf8(&'static str),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Truncated(what) => write!(f, "truncated {what}"),
            ProtocolError::UnsupportedVersion(v) => {
                write!(f, "unsupported protocol version {v} (this build speaks {PROTOCOL_VERSION})")
            }
            ProtocolError::UnknownFrame(k) => write!(f, "unknown frame kind {k:#04x}"),
            ProtocolError::UnexpectedFrame { got, expected } => {
                write!(f, "unexpected frame {got:#04x} (expected {expected})")
            }
            ProtocolError::OversizedFrame(len) => {
                write!(f, "frame payload of {len} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte cap")
            }
            ProtocolError::UnknownEngine(e) => write!(f, "unknown engine selector {e}"),
            ProtocolError::BadUtf8(what) => write!(f, "{what} is not valid UTF-8"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// The execution engine a HELLO selects, as a wire-stable selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EngineSel {
    /// Cycle-accurate simulation ([`Engine::Cycle`]).
    Cycle,
    /// Batched execution with sampled timing ([`Engine::Batched`]) —
    /// the serving default: several times faster, bit-exact
    /// monitor-visible results.
    #[default]
    Batched,
    /// No accelerator ([`Engine::Unaccelerated`]).
    Unaccelerated,
}

impl EngineSel {
    fn to_byte(self) -> u8 {
        match self {
            EngineSel::Cycle => 0,
            EngineSel::Batched => 1,
            EngineSel::Unaccelerated => 2,
        }
    }

    fn from_byte(b: u8) -> Result<Self, ProtocolError> {
        match b {
            0 => Ok(EngineSel::Cycle),
            1 => Ok(EngineSel::Batched),
            2 => Ok(EngineSel::Unaccelerated),
            other => Err(ProtocolError::UnknownEngine(other)),
        }
    }

    /// The [`Engine`] this selector names. Batched periods/windows are
    /// carried as config knobs, not engine overrides, so the selector
    /// stays one byte.
    pub fn engine(self) -> Engine {
        match self {
            EngineSel::Cycle => Engine::Cycle,
            EngineSel::Batched => Engine::Batched {
                period: None,
                window: None,
            },
            EngineSel::Unaccelerated => Engine::Unaccelerated,
        }
    }

    /// Parses the `--engine` spellings the client binary accepts.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "cycle" => Some(EngineSel::Cycle),
            "batched" => Some(EngineSel::Batched),
            "unaccel" | "unaccelerated" => Some(EngineSel::Unaccelerated),
            _ => None,
        }
    }
}

/// The session handshake: who is asking, which monitor to run, and the
/// `SystemConfig` knobs the tenant is allowed to turn. Unset knobs
/// inherit the server's defaults.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Hello {
    /// Tenant identifier (echoed in every report line).
    pub tenant: String,
    /// Monitor name, resolved in the server's registry.
    pub monitor: String,
    /// Execution engine.
    pub engine: EngineSel,
    /// Open the streamed `.fadet` bytes in recovering mode: corrupt
    /// chunks are skipped and accounted in a `DegradationReport`
    /// instead of failing the session.
    pub recover: bool,
    /// Per-tenant shadow page budget
    /// ([`SystemConfig::with_shadow_page_budget`]).
    pub shadow_page_budget: Option<u64>,
    /// Per-tenant shadow byte cap
    /// ([`SystemConfig::with_shadow_mem_cap`]).
    pub shadow_mem_cap: Option<u64>,
    /// Batched sampling period ([`SystemConfig::with_sample_period`]).
    pub sample_period: Option<u64>,
    /// Batched sampling window ([`SystemConfig::with_sample_window`]).
    pub sample_window: Option<u64>,
    /// SoA lane width ([`SystemConfig::with_batch_lanes`]).
    pub batch_lanes: Option<u32>,
    /// Simulation seed ([`SystemConfig::with_seed`]).
    pub seed: Option<u64>,
}

impl Hello {
    /// A HELLO for `tenant` running `monitor` with every knob unset.
    pub fn new(tenant: impl Into<String>, monitor: impl Into<String>) -> Self {
        Hello {
            tenant: tenant.into(),
            monitor: monitor.into(),
            ..Hello::default()
        }
    }

    /// Applies this handshake's knobs on top of `base` — the server's
    /// default configuration.
    pub fn config(&self, base: SystemConfig) -> SystemConfig {
        let mut cfg = base;
        if let Some(pages) = self.shadow_page_budget {
            cfg = cfg.with_shadow_page_budget(pages as usize);
        }
        if let Some(bytes) = self.shadow_mem_cap {
            cfg = cfg.with_shadow_mem_cap(bytes as usize);
        }
        if let Some(p) = self.sample_period {
            cfg = cfg.with_sample_period(p);
        }
        if let Some(w) = self.sample_window {
            cfg = cfg.with_sample_window(w);
        }
        if let Some(l) = self.batch_lanes {
            cfg = cfg.with_batch_lanes(l as usize);
        }
        if let Some(s) = self.seed {
            cfg = cfg.with_seed(s);
        }
        cfg
    }

    /// Encodes the HELLO payload (see `docs/PROTOCOL.md` for the
    /// layout).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.tenant.len() + self.monitor.len());
        out.push(PROTOCOL_VERSION);
        out.push(u8::from(self.recover));
        out.push(self.engine.to_byte());
        out.push(0); // reserved
        put_str(&mut out, &self.tenant);
        put_str(&mut out, &self.monitor);
        put_u64(&mut out, self.shadow_page_budget.unwrap_or(U64_UNSET));
        put_u64(&mut out, self.shadow_mem_cap.unwrap_or(U64_UNSET));
        put_u64(&mut out, self.sample_period.unwrap_or(U64_UNSET));
        put_u64(&mut out, self.sample_window.unwrap_or(U64_UNSET));
        out.extend_from_slice(&self.batch_lanes.unwrap_or(U32_UNSET).to_le_bytes());
        put_u64(&mut out, self.seed.unwrap_or(U64_UNSET));
        out
    }

    /// Decodes a HELLO payload.
    pub fn decode(payload: &[u8]) -> Result<Self, ProtocolError> {
        let mut p = Cursor { buf: payload, pos: 0 };
        let version = p.u8("HELLO version byte")?;
        if version != PROTOCOL_VERSION {
            return Err(ProtocolError::UnsupportedVersion(version));
        }
        let recover = p.u8("HELLO flags")? != 0;
        let engine = EngineSel::from_byte(p.u8("HELLO engine selector")?)?;
        let _reserved = p.u8("HELLO reserved byte")?;
        let tenant = p.str("HELLO tenant id")?;
        let monitor = p.str("HELLO monitor name")?;
        let shadow_page_budget = opt64(p.u64("HELLO shadow page budget")?);
        let shadow_mem_cap = opt64(p.u64("HELLO shadow mem cap")?);
        let sample_period = opt64(p.u64("HELLO sample period")?);
        let sample_window = opt64(p.u64("HELLO sample window")?);
        let batch_lanes = opt32(p.u32("HELLO batch lanes")?);
        let seed = opt64(p.u64("HELLO seed")?);
        Ok(Hello {
            tenant,
            monitor,
            engine,
            recover,
            shadow_page_budget,
            shadow_mem_cap,
            sample_period,
            sample_window,
            batch_lanes,
            seed,
        })
    }
}

/// The END frame's binary payload: what the session processed, so load
/// harnesses need no JSON parser to account a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct EndSummary {
    /// Monitored events the session accepted.
    pub events: u64,
    /// Application instructions retired.
    pub instrs: u64,
    /// REPORT frames the server sent before this END.
    pub reports: u32,
}

impl EndSummary {
    /// Encodes the END payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20);
        put_u64(&mut out, self.events);
        put_u64(&mut out, self.instrs);
        out.extend_from_slice(&self.reports.to_le_bytes());
        out
    }

    /// Decodes an END payload.
    pub fn decode(payload: &[u8]) -> Result<Self, ProtocolError> {
        let mut p = Cursor { buf: payload, pos: 0 };
        Ok(EndSummary {
            events: p.u64("END events")?,
            instrs: p.u64("END instrs")?,
            reports: p.u32("END report count")?,
        })
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let len = u16::try_from(s.len()).unwrap_or(u16::MAX);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&s.as_bytes()[..len as usize]);
}

fn opt64(v: u64) -> Option<u64> {
    (v != U64_UNSET).then_some(v)
}

fn opt32(v: u32) -> Option<u32> {
    (v != U32_UNSET).then_some(v)
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&[u8], ProtocolError> {
        let end = self.pos.checked_add(n).ok_or(ProtocolError::Truncated(what))?;
        if end > self.buf.len() {
            return Err(ProtocolError::Truncated(what));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, ProtocolError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn str(&mut self, what: &'static str) -> Result<String, ProtocolError> {
        let len = u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()) as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::BadUtf8(what))
    }
}

/// How reading one frame can fail: transport or protocol.
#[derive(Debug)]
pub enum FrameError {
    /// The socket failed or closed mid-frame.
    Io(io::Error),
    /// The bytes violated the framing rules.
    Protocol(ProtocolError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport: {e}"),
            FrameError::Protocol(e) => write!(f, "protocol: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<ProtocolError> for FrameError {
    fn from(e: ProtocolError) -> Self {
        FrameError::Protocol(e)
    }
}

/// Writes one frame.
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME_PAYLOAD);
    let mut header = [0u8; 5];
    header[0] = kind;
    header[1..5].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)
}

/// Reads one frame. `Ok(None)` is a clean end-of-stream (the peer
/// closed between frames); EOF *inside* a frame is an error.
pub fn read_frame(r: &mut impl Read) -> Result<Option<(u8, Vec<u8>)>, FrameError> {
    let mut kind = [0u8; 1];
    // Distinguish "closed between frames" from "died mid-frame".
    match r.read(&mut kind) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) if e.kind() == io::ErrorKind::Interrupted => return read_frame(r),
        Err(e) => return Err(e.into()),
    }
    let mut len = [0u8; 4];
    r.read_exact(&mut len).map_err(FrameError::Io)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(ProtocolError::OversizedFrame(len as u64).into());
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(FrameError::Io)?;
    Ok(Some((kind[0], payload)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_round_trips_every_field() {
        let hello = Hello {
            tenant: "tenant-42".into(),
            monitor: "MemLeak".into(),
            engine: EngineSel::Cycle,
            recover: true,
            shadow_page_budget: Some(64),
            shadow_mem_cap: Some(1 << 20),
            sample_period: Some(8192),
            sample_window: Some(2048),
            batch_lanes: Some(16),
            seed: Some(0x5eed),
        };
        assert_eq!(Hello::decode(&hello.encode()).unwrap(), hello);
        let bare = Hello::new("t", "AddrCheck");
        assert_eq!(Hello::decode(&bare.encode()).unwrap(), bare);
    }

    #[test]
    fn hello_rejects_bad_versions_and_truncation() {
        let mut bytes = Hello::new("t", "AddrCheck").encode();
        bytes[0] = 9;
        assert_eq!(
            Hello::decode(&bytes).unwrap_err(),
            ProtocolError::UnsupportedVersion(9)
        );
        let bytes = Hello::new("t", "AddrCheck").encode();
        assert!(matches!(
            Hello::decode(&bytes[..bytes.len() - 3]).unwrap_err(),
            ProtocolError::Truncated(_)
        ));
    }

    #[test]
    fn hello_knobs_reach_the_config() {
        let hello = Hello {
            shadow_page_budget: Some(8),
            shadow_mem_cap: Some(4096 * 9),
            seed: Some(77),
            ..Hello::new("t", "MemCheck")
        };
        let cfg = hello.config(SystemConfig::fade_single_core());
        assert_eq!(cfg.shadow_page_budget, Some(8));
        assert_eq!(cfg.shadow_mem_cap_bytes, Some(4096 * 9));
        assert_eq!(cfg.seed, 77);
        let bare = Hello::new("t", "MemCheck").config(SystemConfig::fade_single_core());
        assert_eq!(bare.seed, SystemConfig::fade_single_core().seed);
    }

    #[test]
    fn frames_round_trip_and_eof_is_clean_only_between_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FRAME_TRACE, b"abc").unwrap();
        write_frame(&mut buf, FRAME_FINISH, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), Some((FRAME_TRACE, b"abc".to_vec())));
        assert_eq!(read_frame(&mut r).unwrap(), Some((FRAME_FINISH, Vec::new())));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF between frames");
        // EOF mid-frame is an I/O error, not a clean close.
        let mut r = &buf[..3];
        assert!(matches!(read_frame(&mut r), Err(FrameError::Io(_))));
    }

    #[test]
    fn oversized_frames_are_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.push(FRAME_TRACE);
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut r = &buf[..];
        assert!(matches!(
            read_frame(&mut r),
            Err(FrameError::Protocol(ProtocolError::OversizedFrame(_)))
        ));
    }

    #[test]
    fn end_summary_round_trips() {
        let end = EndSummary {
            events: 123_456,
            instrs: 999,
            reports: 7,
        };
        assert_eq!(EndSummary::decode(&end.encode()).unwrap(), end);
    }
}
