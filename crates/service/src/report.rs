//! The JSON-lines report stream: every line the daemon sends a client
//! is built here, on top of the shared [`fade_report`] writer — the
//! same writer the bench artifact uses, so the two report shapes
//! cannot drift.
//!
//! Three line types, discriminated by `"type"`:
//!
//! * `violation` — one monitor violation report, streamed as the
//!   session produces it.
//! * `summary` — the end-of-session roll-up: counters, timing
//!   estimate, shadow footprint, and the degradation accounting of a
//!   recovering replay.
//! * `error` — a typed failure; the connection closes after it.
//!
//! Every function here is pure: the integration suite renders the
//! *expected* lines from an in-process [`Session`](fade_system::Session)
//! through these same functions and compares byte-for-byte with what
//! came over the socket.

use fade_report::JsonObject;
use fade_system::{RunReport, ShadowUsage};
use fade_trace::DegradationReport;

/// One streamed violation report.
pub fn violation_line(tenant: &str, seq: u32, text: &str) -> String {
    JsonObject::new()
        .str("type", "violation")
        .str("tenant", tenant)
        .uint("seq", u64::from(seq))
        .str("text", text)
        .render()
}

/// The degradation accounting of a recovering replay, as a nested
/// JSON object (every field of [`DegradationReport`], faults
/// included, so "bit-exact degradation" is checkable on the wire).
pub fn degradation_json(d: &DegradationReport) -> String {
    let faults: Vec<String> = d
        .faults
        .iter()
        .map(|f| {
            JsonObject::new()
                .uint("offset", f.offset)
                .opt_uint("resumed_at", f.resumed_at)
                .str("error", &f.error.to_string())
                .render()
        })
        .collect();
    JsonObject::new()
        .uint("chunks_skipped", d.chunks_skipped)
        .uint("records_lost", d.records_lost)
        .uint("bytes_skipped", d.bytes_skipped)
        .bool("truncated_tail", d.truncated_tail)
        .bool("trailer_verified", d.trailer_verified)
        .array("faults", &faults)
        .render()
}

/// The end-of-session summary line.
///
/// Deliberately excludes wall-clock quantities ([`RunReport::wall_s`]):
/// every field is a deterministic function of (trace bytes, monitor,
/// config, engine), which is what makes server-vs-in-process
/// byte-equality a meaningful acceptance check.
pub fn summary_line(tenant: &str, engine: &str, report: &RunReport, usage: ShadowUsage) -> String {
    let s = &report.stats;
    let obj = JsonObject::new()
        .str("type", "summary")
        .str("tenant", tenant)
        .str("benchmark", &s.benchmark)
        .str("monitor", &s.monitor)
        .str("engine", engine)
        .uint("events", s.monitored_events)
        .uint("instrs", s.app_instrs)
        .uint("cycles", s.cycles)
        .uint("baseline_cycles", s.baseline_cycles)
        .float("slowdown", s.slowdown(), 3)
        .float("filtering_ratio", s.filtering_ratio(), 4)
        .uint("violations", report.violations.len() as u64)
        .uint(
            "sampling_windows",
            s.sampling.as_ref().map_or(0, |x| x.windows as u64),
        )
        .opt_float(
            "rel_half_width",
            s.sampling.as_ref().and_then(|x| x.rel_half_width),
            4,
        )
        .uint("shadow_bytes", usage.bytes as u64)
        .uint("shadow_full_pages", usage.full_pages as u64);
    match &report.degradation {
        Some(d) => obj.raw("degradation", &degradation_json(d)),
        None => obj.null("degradation"),
    }
    .render()
}

/// A typed failure reply. `kind` is a stable machine-matchable tag
/// (`"shadow_budget"`, `"monitor_panicked"`, …); `detail` is the
/// human-readable cause.
pub fn error_line(kind: &str, detail: &str) -> String {
    JsonObject::new()
        .str("type", "error")
        .str("error", kind)
        .str("detail", detail)
        .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_lines_are_one_json_object() {
        assert_eq!(
            error_line("shadow_budget", "cap of 4096 bytes exceeded"),
            r#"{"type": "error", "error": "shadow_budget", "detail": "cap of 4096 bytes exceeded"}"#
        );
    }

    #[test]
    fn violation_lines_escape_monitor_text() {
        let line = violation_line("t0", 3, "leak at 0x10 \"heap\"");
        assert_eq!(
            line,
            r#"{"type": "violation", "tenant": "t0", "seq": 3, "text": "leak at 0x10 \"heap\""}"#
        );
    }

    #[test]
    fn degradation_serializes_every_field() {
        let d = DegradationReport {
            chunks_skipped: 2,
            records_lost: 100,
            bytes_skipped: 512,
            truncated_tail: true,
            trailer_verified: false,
            faults: Vec::new(),
        };
        assert_eq!(
            degradation_json(&d),
            r#"{"chunks_skipped": 2, "records_lost": 100, "bytes_skipped": 512, "truncated_tail": true, "trailer_verified": false, "faults": []}"#
        );
    }
}
