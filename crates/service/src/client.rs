//! The client side of the protocol: connect, stream a `.fadet` byte
//! buffer, consume the report stream. Shared by the `fade-client`
//! binary, the load harness, and the integration suite.

use std::io::{self, BufReader};
use std::os::unix::net::UnixStream;
use std::path::Path;

use crate::protocol::{
    read_frame, write_frame, EndSummary, FrameError, Hello, FRAME_END, FRAME_ERROR, FRAME_FINISH,
    FRAME_HELLO, FRAME_REPORT, FRAME_TRACE,
};

/// TRACE frames carry at most this many bytes each (a streaming
/// client's write granularity; servers accept any chunking).
pub const TRACE_CHUNK: usize = 64 * 1024;

/// How one served session can fail from the client's side.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connect, write, or mid-frame close).
    Io(io::Error),
    /// The server's reply violated the framing rules.
    Frame(FrameError),
    /// The server replied with a typed ERROR line (the JSON payload,
    /// verbatim).
    Server(String),
    /// The server closed the stream without END or ERROR.
    ClosedEarly,
    /// The server sent a frame kind a client never expects.
    UnexpectedFrame(u8),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Frame(e) => write!(f, "bad reply framing: {e}"),
            ClientError::Server(line) => write!(f, "server error: {line}"),
            ClientError::ClosedEarly => write!(f, "server closed the stream before END"),
            ClientError::UnexpectedFrame(k) => write!(f, "unexpected reply frame {k:#04x}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// Runs one full session conversation: HELLO, the trace bytes in
/// [`TRACE_CHUNK`]-sized TRACE frames, FINISH — then reads the reply
/// stream, handing each REPORT line to `on_report`, until END (the
/// decoded counters are returned) or ERROR (a
/// [`ClientError::Server`]).
///
/// If the server errors while we are still streaming (a rejected
/// HELLO, an oversized trace), the local write fails first — the
/// pending ERROR frame is then drained so callers still see the typed
/// reply instead of a bare broken pipe.
pub fn stream_session(
    socket: &Path,
    hello: &Hello,
    trace: &[u8],
    mut on_report: impl FnMut(&str),
) -> Result<EndSummary, ClientError> {
    let mut stream = UnixStream::connect(socket)?;
    let send = (|| -> io::Result<()> {
        write_frame(&mut stream, FRAME_HELLO, &hello.encode())?;
        for chunk in trace.chunks(TRACE_CHUNK) {
            write_frame(&mut stream, FRAME_TRACE, chunk)?;
        }
        write_frame(&mut stream, FRAME_FINISH, &[])
    })();
    let mut reader = BufReader::new(stream);
    if let Err(send_err) = send {
        // Surface the server's typed reply if one is pending.
        if let Ok(Some((FRAME_ERROR, payload))) = read_frame(&mut reader) {
            return Err(ClientError::Server(
                String::from_utf8_lossy(&payload).into_owned(),
            ));
        }
        return Err(send_err.into());
    }
    loop {
        match read_frame(&mut reader)? {
            Some((FRAME_REPORT, payload)) => {
                on_report(&String::from_utf8_lossy(&payload));
            }
            Some((FRAME_END, payload)) => {
                return EndSummary::decode(&payload).map_err(|e| ClientError::Frame(e.into()));
            }
            Some((FRAME_ERROR, payload)) => {
                return Err(ClientError::Server(
                    String::from_utf8_lossy(&payload).into_owned(),
                ));
            }
            Some((kind, _)) => return Err(ClientError::UnexpectedFrame(kind)),
            None => return Err(ClientError::ClosedEarly),
        }
    }
}
