//! Bounded-memory differential suite: for every monitor × benchmark of
//! its suite, a run under a shadow-page budget of **half** the
//! unbounded run's peak must be bit-exact in every monitor-visible way
//! — same metadata, same violations, same accelerator counters — while
//! the eviction counters prove the budget actually bit (demotions
//! happened; this is not a budget so loose it never fired).
//!
//! This is the acceptance test for the bounded shadow state: eviction
//! and compaction are *lossless* representations, not data loss.

use fade_repro::prelude::*;

mod common;
use common::{assert_monitor_visible_equal, suite_for};

const INSTRS: u64 = 30_000;

fn run(b: &BenchProfile, monitor: &str, cfg: SystemConfig) -> Session {
    let mut s = Session::builder()
        .monitor(monitor)
        .source(b)
        .config(cfg)
        .build()
        .unwrap_or_else(|e| panic!("{monitor}/{}: {e}", b.name));
    s.run_exact(INSTRS)
        .unwrap_or_else(|e| panic!("{monitor}/{}: {e}", b.name));
    s.drain().unwrap_or_else(|e| panic!("{monitor}/{}: {e}", b.name));
    s
}

#[test]
fn half_peak_budget_is_bit_exact_with_eviction_proof() {
    let mut exercised = 0u32;
    for monitor in ["AddrCheck", "AtomCheck", "MemCheck", "MemLeak", "TaintCheck"] {
        for b in suite_for(monitor) {
            let what = format!("{monitor}/{}", b.name);
            let cfg = SystemConfig::fade_single_core();

            let unbounded = run(&b, monitor, cfg);
            let peak = unbounded.shadow_counters().peak_full_pages;
            assert!(peak > 0, "{what}: workload never materialized a shadow page?");

            // Half the unbounded peak (floored, min 1): the budget the
            // acceptance criteria demand.
            let budget = (peak / 2).max(1);
            let bounded = run(&b, monitor, cfg.with_shadow_page_budget(budget));

            assert_monitor_visible_equal(&unbounded, &bounded, &what);

            let c = bounded.shadow_counters();
            assert!(
                c.peak_full_pages <= budget,
                "{what}: bounded run exceeded its budget ({} > {budget})",
                c.peak_full_pages
            );
            // Only demand eviction proof where the budget can actually
            // bind (a two-page workload halved to one page must evict;
            // a one-page workload has nothing to demote).
            if peak >= 2 {
                assert!(
                    c.evictions + c.compactions > 0,
                    "{what}: budget {budget} of peak {peak} never fired \
                     (evictions {} + compactions {})",
                    c.evictions,
                    c.compactions
                );
                exercised += 1;
            }
        }
    }
    assert!(
        exercised > 0,
        "no workload had a peak of >= 2 pages — the suite proved nothing"
    );
}
