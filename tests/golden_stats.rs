//! Golden-stats regression test for the batched system mode.
//!
//! Runs two fixed-seed workloads through `MonitoringSystem::run_batched`
//! — on both the scalar batched engine and the vectorized SoA engine
//! (`batch_lanes = 16`) — and compares a full stats snapshot (events,
//! functional accelerator counters, fast-path fraction, violations,
//! metadata fingerprint) against a committed golden file. Every quantity in the snapshot is
//! deterministic — same seed, same trace, same filtering decisions —
//! so any diff is a real behaviour change, not noise.
//!
//! To regenerate the golden file after an *intentional* change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --release -p fade-repro --test golden_stats
//! ```
//!
//! then review the diff of `tests/golden/batched_stats.txt` like any
//! other code change.

use std::fmt::Write as _;
use std::path::PathBuf;

use fade_repro::isa::{layout, Reg, VirtAddr};
use fade_repro::prelude::*;
use fade_repro::trace::bench;

/// Instructions per workload: enough to cross several sampling periods.
const INSTRS: u64 = 60_000;

fn golden_path() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/repro; the golden files live in the
    // repository-root tests/ directory next to this test's source.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/batched_stats.txt")
}

/// FNV-1a over the monitor-visible metadata: all register metadata plus
/// probes across globals, heap, and stack territory.
fn state_fingerprint(sys: &Session) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    for r in Reg::all() {
        mix(sys.state().reg_meta(r));
    }
    for i in 0..4096u32 {
        mix(sys.state().mem_meta(VirtAddr::new(layout::GLOBALS_BASE + i * 4)));
        mix(sys.state().mem_meta(VirtAddr::new(layout::HEAP_BASE + i * 4)));
        mix(sys.state().mem_meta(VirtAddr::new(layout::STACK_TOP - 16 * 4096 + i * 4)));
    }
    h
}

fn snapshot_one(bench_name: &str, monitor: &str, lanes: usize, out: &mut String) {
    let b = bench::by_name(bench_name).unwrap();
    let cfg = SystemConfig::fade_single_core()
        .with_sample_period(2048)
        .with_sample_window(512)
        .with_batch_lanes(lanes);
    let mut sys = Session::builder()
        .monitor(monitor)
        .source(b)
        .engine(Engine::batched())
        .config(cfg)
        .build()
        .unwrap();
    sys.run(INSTRS).unwrap();
    sys.drain().unwrap();

    let f = sys.fade_stats().expect("FADE config");
    let bs = sys.batch_stats();
    let reports = sys.monitor().reports();
    writeln!(out, "[{bench_name}/{monitor} lanes={lanes}]").unwrap();
    writeln!(out, "instrs = {}", sys.instrs()).unwrap();
    writeln!(out, "events = {}", sys.events_seen()).unwrap();
    writeln!(out, "instr_events = {}", f.instr_events).unwrap();
    writeln!(out, "filtered = {}", f.filtered).unwrap();
    writeln!(out, "partial_hits = {}", f.partial_hits).unwrap();
    writeln!(out, "unfiltered_instr = {}", f.unfiltered_instr).unwrap();
    writeln!(out, "stack_updates = {}", f.stack_updates).unwrap();
    writeln!(out, "high_level = {}", f.high_level).unwrap();
    writeln!(out, "shots = {}", f.shots).unwrap();
    writeln!(out, "batch_events = {}", bs.events).unwrap();
    writeln!(out, "batch_fast_path = {}", bs.fast_path).unwrap();
    writeln!(out, "batch_fallback = {}", bs.fallback).unwrap();
    writeln!(out, "batch_dispatched = {}", bs.dispatched).unwrap();
    writeln!(out, "fast_path_fraction = {:.4}", bs.fast_path_fraction()).unwrap();
    writeln!(out, "violations = {}", reports.len()).unwrap();
    for r in reports.iter().take(3) {
        writeln!(out, "violation = {r}").unwrap();
    }
    writeln!(out, "state_fingerprint = {:#018x}", state_fingerprint(&sys)).unwrap();
    writeln!(out).unwrap();
}

#[test]
fn batched_stats_match_golden_snapshot() {
    let mut snapshot = String::from(
        "# Golden batched-mode stats snapshot (see tests/golden_stats.rs;\n\
         # regenerate with UPDATE_GOLDEN=1 after intentional changes).\n\n",
    );
    // Scalar batched engine, then the vectorized SoA engine over the
    // same workloads. The vectorized kernel is bit-exact with the
    // scalar loop, so every quantity below — including the
    // fast-path/fallback split and the metadata fingerprint — must come
    // out identical between the lanes=1 and lanes=16 sections; a
    // vectorized-only diff here means the kernel's accounting drifted.
    snapshot_one("gcc", "MemLeak", 1, &mut snapshot);
    snapshot_one("hmmer", "AddrCheck", 1, &mut snapshot);
    snapshot_one("gcc", "MemLeak", 16, &mut snapshot);
    snapshot_one("hmmer", "AddrCheck", 16, &mut snapshot);

    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &snapshot).expect("write golden file");
        eprintln!("updated {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        golden, snapshot,
        "batched-mode stats drifted from the golden snapshot; if the \
         change is intentional, regenerate with UPDATE_GOLDEN=1 and \
         review the diff"
    );
}
