//! Record/replay differential harness: a trace recorded to the
//! `.fadet` format and replayed must be bit-exact with live generation
//! in everything a monitor can observe — for every monitor/benchmark
//! pair, in both the cycle-accurate and the batched execution engine.
//!
//! This is the contract that makes the trace-file subsystem safe to
//! build on: once a workload is "a file we replay", every result
//! produced from the file must be indistinguishable from the run that
//! produced the file.

use fade_repro::monitors::all_monitors;
use fade_repro::prelude::*;
use fade_repro::system::ReplayBuffer;
use fade_repro::trace::file::{decode_trace, encode_trace};
use fade_repro::trace::{bench, TraceMeta, TraceRecord};

mod common;
use common::{assert_monitor_visible_equal, suite_for};

/// Instructions per (monitor, benchmark) point: small traces, since the
/// sweep covers every pair three ways (live, replay-cycle,
/// replay-batched).
const SWEEP_INSTRS: u64 = 12_000;

/// A sampling configuration small enough that every sweep trace crosses
/// several batch→cycle→batch transitions.
fn cfg() -> SystemConfig {
    SystemConfig::fade_single_core()
        .with_sample_period(1024)
        .with_sample_window(256)
}

/// Generates the trace prefix holding the first `n_instrs` instruction
/// records — the stream a live run over `n_instrs` instructions
/// consumes (the generator is deterministic per seed).
fn record_prefix(b: &BenchProfile, seed: u64, n_instrs: u64) -> Vec<TraceRecord> {
    let mut prog = SyntheticProgram::new(b, seed);
    let mut records = Vec::new();
    let mut instrs = 0u64;
    while instrs < n_instrs {
        let r = prog.next_record();
        if matches!(r, TraceRecord::Instr(_)) {
            instrs += 1;
        }
        records.push(r);
    }
    records
}

fn run_live(b: &BenchProfile, monitor: &str, instrs: u64) -> Session {
    let mut sys = Session::builder()
        .monitor(monitor)
        .source(b)
        .config(cfg())
        .build()
        .unwrap();
    sys.run_exact(instrs).unwrap();
    sys.drain().unwrap();
    sys
}

fn run_replay(
    b: &BenchProfile,
    monitor: &str,
    records: Vec<TraceRecord>,
    instrs: u64,
    batched: bool,
) -> Session {
    let engine = if batched { Engine::batched() } else { Engine::Cycle };
    let mut sys = Session::builder()
        .monitor(monitor)
        .trace_source(b.clone(), Box::new(ReplayBuffer::new(records)))
        .engine(engine)
        .config(cfg())
        .build()
        .unwrap();
    sys.run_exact(instrs).unwrap();
    sys.drain().unwrap();
    sys
}

/// For every monitor and every benchmark of its suite: record the
/// generated trace, push it through the full `.fadet` codec, replay it,
/// and require bit-exact monitor-visible results against live
/// generation — in cycle mode *and* in batched mode.
#[test]
fn replayed_trace_is_bit_exact_with_live_generation() {
    for monitor in all_monitors() {
        let name = monitor.name();
        for b in suite_for(name) {
            let records = record_prefix(&b, cfg().seed, SWEEP_INSTRS);

            // Round-trip the recording through the file format, so the
            // replayed stream is what a consumer of the file would see.
            let meta = TraceMeta::new(b.name, cfg().seed);
            let bytes = encode_trace(&meta, &records);
            let (meta2, replayed) = decode_trace(&bytes)
                .unwrap_or_else(|e| panic!("{name}/{}: decode failed: {e}", b.name));
            assert_eq!(meta2, meta, "{name}/{}: metadata", b.name);
            assert_eq!(replayed, records, "{name}/{}: codec round-trip", b.name);

            let live = run_live(&b, name, SWEEP_INSTRS);
            let cycle = run_replay(&b, name, replayed.clone(), SWEEP_INSTRS, false);
            assert_monitor_visible_equal(
                &live,
                &cycle,
                &format!("{name}/{} replay-cycle", b.name),
            );
            // Cycle-mode replay consumes the identical stream, so even
            // the timing is exact.
            assert_eq!(
                live.cycles(),
                cycle.cycles(),
                "{name}/{}: replay-cycle timing",
                b.name
            );

            let batched = run_replay(&b, name, replayed, SWEEP_INSTRS, true);
            assert!(
                batched.batch_stats().events > 0,
                "{name}/{}: batched path unused",
                b.name
            );
            assert_monitor_visible_equal(
                &live,
                &batched,
                &format!("{name}/{} replay-batched", b.name),
            );
        }
    }
}

/// Replay straight from a `.fadet` file on disk, streamed through
/// `TraceReader` (chunk-at-a-time, no full materialization), with the
/// benchmark profile resolved from the file's own header metadata.
#[test]
fn streamed_file_replay_matches_live() {
    let b = bench::by_name("gcc").unwrap();
    let records = record_prefix(&b, cfg().seed, SWEEP_INSTRS);
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("streamed_replay.fadet");
    fade_repro::trace::write_trace_file(&path, &TraceMeta::new("gcc", cfg().seed), &records)
        .unwrap();

    let live = run_live(&b, "MemLeak", SWEEP_INSTRS);
    let mut streamed = Session::builder()
        .monitor("MemLeak")
        .source(path.as_path())
        .engine(Engine::batched())
        .config(cfg())
        .build()
        .unwrap();
    streamed.run_exact(SWEEP_INSTRS).unwrap();
    streamed.drain().unwrap();
    assert_monitor_visible_equal(&live, &streamed, "MemLeak/gcc streamed file replay");
}
