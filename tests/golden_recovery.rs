//! Golden corrupt-fixture suite for the recovering `.fadet` reader.
//!
//! Each fixture is the committed byte-stable `tests/golden/trace_gcc.fadet`
//! with one deterministic fault applied — a flipped payload bit, a cut
//! mid-chunk, a cut inside the trailer, and a garbaged header — and the
//! suite pins, byte for byte and field for field, both the corrupt
//! bytes themselves and the exact [`DegradationReport`] the recovering
//! reader produces for them. Any drift in resynchronization behavior
//! (chunks skipped, records lost, bytes scanned, fault offsets) fails
//! here before it can silently change replay results in the field.
//!
//! To regenerate after an *intentional* format or recovery change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --release -p fade-repro --test golden_recovery
//! ```
//!
//! then review the fixture diffs like any other code change. (Regenerate
//! `trace_gcc.fadet` first — via `--test golden_trace` — if the base
//! encoding changed too.)

use std::path::PathBuf;

use fade_repro::trace::file::{decode_trace, decode_trace_recovering};
use fade_repro::trace::{DegradationReport, TraceRecord};

fn golden_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/repro; the golden files live in the
    // repository-root tests/ directory next to this test's source.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn base_bytes() -> Vec<u8> {
    let path = golden_dir().join("trace_gcc.fadet");
    std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing base golden trace {} ({e}); create it first with \
             UPDATE_GOLDEN=1 cargo test -p fade-repro --test golden_trace",
            path.display()
        )
    })
}

/// One committed corruption: how to derive it from the clean bytes.
struct Fixture {
    /// Fixture file stem under `tests/golden/`.
    name: &'static str,
    /// Applies the deterministic fault to a copy of the clean bytes.
    corrupt: fn(Vec<u8>) -> Vec<u8>,
}

const FIXTURES: &[Fixture] = &[
    // One flipped bit in the middle of the stream: lands inside a chunk
    // payload, so that chunk fails its CRC and is skipped.
    Fixture {
        name: "trace_gcc_bitflip",
        corrupt: |mut b| {
            let off = b.len() / 2;
            b[off] ^= 1 << 3;
            b
        },
    },
    // Cut mid-chunk: the final chunk ends mid-structure and the trailer
    // is gone entirely.
    Fixture {
        name: "trace_gcc_trunc_chunk",
        corrupt: |mut b| {
            b.truncate(b.len() * 3 / 4);
            b
        },
    },
    // Cut inside the 13-byte trailer (marker + count:u64 + crc:u32):
    // every chunk survives, only end-of-stream verification is lost.
    Fixture {
        name: "trace_gcc_trunc_trailer",
        corrupt: |mut b| {
            b.truncate(b.len() - 8);
            b
        },
    },
    // Garbage magic: recovery cannot help a file that never identifies
    // itself — this one must *fail typed*, not degrade.
    Fixture {
        name: "trace_gcc_garbage_header",
        corrupt: |mut b| {
            b[..4].copy_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF]);
            b
        },
    },
];

/// The committed corrupt bytes must stay derivable from the committed
/// clean fixture — the two cannot drift apart.
#[test]
fn corrupt_fixtures_match_their_derivation() {
    let base = base_bytes();
    for f in FIXTURES {
        let derived = (f.corrupt)(base.clone());
        let path = golden_dir().join(format!("{}.fadet", f.name));
        if std::env::var_os("UPDATE_GOLDEN").is_some() {
            std::fs::write(&path, &derived).expect("write corrupt fixture");
            eprintln!("updated {} ({} bytes)", path.display(), derived.len());
            continue;
        }
        let committed = std::fs::read(&path).unwrap_or_else(|e| {
            panic!(
                "missing corrupt fixture {} ({e}); run with UPDATE_GOLDEN=1 to create it",
                path.display()
            )
        });
        assert!(
            committed == derived,
            "{}: committed corrupt fixture no longer matches its derivation \
             from trace_gcc.fadet ({} committed vs {} derived bytes); \
             regenerate with UPDATE_GOLDEN=1 and review the diff",
            f.name,
            committed.len(),
            derived.len()
        );
    }
}

/// The corrupt bytes for one fixture, re-derived from the clean base
/// (the derivation test pins the committed file to exactly these bytes,
/// and deriving here keeps the tests order-independent under
/// `UPDATE_GOLDEN`).
fn corrupt_bytes(name: &str) -> Vec<u8> {
    let f = FIXTURES
        .iter()
        .find(|f| f.name == name)
        .unwrap_or_else(|| panic!("unknown fixture {name}"));
    (f.corrupt)(base_bytes())
}

/// Decodes one corrupt fixture in recover mode and pins the exact
/// `DegradationReport` (Debug-formatted) against its committed golden.
fn check_report(name: &str) -> (Vec<TraceRecord>, DegradationReport) {
    let bytes = corrupt_bytes(name);
    let (_, records, report) =
        decode_trace_recovering(&bytes).unwrap_or_else(|e| panic!("{name}: {e}"));
    let rendered = format!("{report:#?}\n");
    let path = golden_dir().join(format!("{name}.report.txt"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &rendered).expect("write golden report");
        eprintln!("updated {}", path.display());
    } else {
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden report {} ({e}); run with UPDATE_GOLDEN=1 to create it",
                path.display()
            )
        });
        assert!(
            golden == rendered,
            "{name}: DegradationReport drifted from the golden fixture.\n\
             --- golden ---\n{golden}\n--- current ---\n{rendered}"
        );
    }
    (records, report)
}

/// `true` if `sub` appears in `full` in order (records survive faults
/// only as a subsequence of the clean stream — never reordered, never
/// invented).
fn is_subsequence(sub: &[TraceRecord], full: &[TraceRecord]) -> bool {
    let mut it = full.iter();
    sub.iter().all(|r| it.any(|f| f == r))
}

#[test]
fn bitflip_skips_one_chunk_and_accounts_for_it() {
    let (clean_meta, clean) = decode_trace(&base_bytes()).expect("clean fixture decodes");
    let (records, report) = check_report("trace_gcc_bitflip");
    assert_eq!(report.chunks_skipped, 1, "one flipped bit kills exactly one chunk");
    assert!(report.trailer_verified, "the trailer is untouched");
    assert!(!report.truncated_tail);
    assert_eq!(
        records.len() as u64 + report.records_lost,
        clean.len() as u64,
        "verified trailer makes the loss accounting exact"
    );
    assert!(is_subsequence(&records, &clean), "survivors keep stream order");
    assert_eq!(clean_meta.bench, "gcc");
}

#[test]
fn truncated_chunk_loses_the_tail_with_accounting() {
    let (_, clean) = decode_trace(&base_bytes()).expect("clean fixture decodes");
    let (records, report) = check_report("trace_gcc_trunc_chunk");
    assert!(report.truncated_tail, "the stream ends mid-chunk");
    assert!(!report.trailer_verified, "the trailer was cut off");
    assert!(report.chunks_skipped >= 1);
    assert!(records.len() < clean.len());
    assert_eq!(records[..], clean[..records.len()], "survivors are a clean prefix");
}

#[test]
fn truncated_trailer_keeps_every_record() {
    let (_, clean) = decode_trace(&base_bytes()).expect("clean fixture decodes");
    let (records, report) = check_report("trace_gcc_trunc_trailer");
    assert_eq!(records, clean, "every chunk survives a trailer-only cut");
    assert!(report.truncated_tail, "but the end of stream is unverified");
    assert!(!report.trailer_verified);
    assert_eq!(report.records_lost, 0);
}

#[test]
fn garbage_header_fails_typed_even_in_recover_mode() {
    let bytes = corrupt_bytes("trace_gcc_garbage_header");
    match decode_trace_recovering(&bytes) {
        Err(fade_repro::trace::TraceFileError::BadMagic) => {}
        other => panic!(
            "a file that never identifies itself must fail BadMagic, got {other:?}"
        ),
    }
}

/// The zero-fault base fixture through the recovering reader: bit-exact
/// records and a clean report — recovery mode costs nothing when
/// nothing is wrong.
#[test]
fn clean_fixture_recovering_is_bit_exact_and_clean() {
    let bytes = base_bytes();
    let (meta_s, strict) = decode_trace(&bytes).expect("strict decode");
    let (meta_r, recovered, report) = decode_trace_recovering(&bytes).expect("recovering decode");
    assert_eq!(meta_s, meta_r);
    assert_eq!(strict, recovered, "zero-fault recovery is bit-exact");
    assert!(report.is_clean(), "no faults -> clean report: {report:?}");
}
