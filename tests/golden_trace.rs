//! Byte-stability test for the `.fadet` trace format.
//!
//! Encodes a fixed-seed trace and compares the bytes against a
//! committed golden fixture. The format promises that the same records
//! always encode to the same bytes *and* that old files stay readable:
//! any diff here is a format change, which must be intentional and must
//! come with a version bump if it breaks old readers.
//!
//! To regenerate after an *intentional* format change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --release -p fade-repro --test golden_trace
//! ```
//!
//! then review the diff of `tests/golden/trace_gcc.fadet` like any
//! other code change.

use std::path::PathBuf;

use fade_repro::trace::file::{decode_trace, TraceWriter};
use fade_repro::trace::{bench, SyntheticProgram, TraceMeta, TraceRecord};

/// Records in the fixture: small enough to commit, large enough to span
/// several chunks and every record kind.
const RECORDS: usize = 2_000;
/// Chunk size of the fixture (multiple chunks on purpose).
const CHUNK_RECORDS: usize = 512;
const BENCH: &str = "gcc";
const SEED: u64 = 42;

fn golden_path() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/repro; the golden files live in the
    // repository-root tests/ directory next to this test's source.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/trace_gcc.fadet")
}

fn fixture_records() -> Vec<TraceRecord> {
    let p = bench::by_name(BENCH).unwrap();
    let mut prog = SyntheticProgram::new(&p, SEED);
    let mut records = Vec::new();
    prog.next_records_into(&mut records, RECORDS);
    records
}

fn fixture_bytes(records: &[TraceRecord]) -> Vec<u8> {
    let meta = TraceMeta::new(BENCH, SEED);
    let mut w = TraceWriter::new(Vec::new(), &meta)
        .unwrap()
        .with_chunk_records(CHUNK_RECORDS);
    w.write_all(records).unwrap();
    w.finish().unwrap()
}

#[test]
fn fadet_encoding_is_byte_stable() {
    let records = fixture_records();
    let bytes = fixture_bytes(&records);

    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &bytes).expect("write golden trace");
        eprintln!("updated {} ({} bytes)", path.display(), bytes.len());
        return;
    }
    let golden = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden trace {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert!(
        golden == bytes,
        "`.fadet` encoding drifted from the golden fixture ({} golden \
         bytes vs {} encoded); if the format change is intentional, bump \
         the version if needed, regenerate with UPDATE_GOLDEN=1, and \
         review the diff",
        golden.len(),
        bytes.len()
    );
}

/// The committed fixture itself must keep decoding to the generator's
/// records — the backward-readability half of the stability promise
/// (a pure encoder change would pass byte equality trivially; this
/// catches decoder regressions against real old bytes).
#[test]
fn golden_fixture_decodes_to_the_recorded_trace() {
    let path = golden_path();
    let Ok(golden) = std::fs::read(&path) else {
        // The byte-stability test reports the missing fixture.
        return;
    };
    let (meta, records) = decode_trace(&golden)
        .unwrap_or_else(|e| panic!("golden fixture no longer decodes: {e}"));
    assert_eq!(meta, TraceMeta::new(BENCH, SEED));
    assert_eq!(records, fixture_records());
}
