//! Helpers shared by the differential harnesses
//! (`tests/differential.rs`, `tests/trace_replay.rs`,
//! `tests/parallel_replay.rs`): the definition of "monitor-visible
//! results" lives here once, so growing the bit-exactness contract (a
//! new counter, a new assertion) updates every harness at the same
//! time.

#![allow(dead_code)] // not every harness uses every helper

use fade_repro::prelude::*;
use fade_repro::shadow::MetadataState;
use fade_repro::trace::bench;

/// The benchmark suite a monitor is evaluated on (Section 6 of the
/// paper; mirrors `fade_bench::experiments::suite_for`).
pub fn suite_for(monitor: &str) -> Vec<BenchProfile> {
    match monitor {
        "AtomCheck" => bench::parallel_suite(),
        "TaintCheck" => bench::taint_suite(),
        _ => bench::spec_int_suite(),
    }
}

/// Anything exposing the monitor-visible result surface:
/// [`MonitoringSystem`]s, live [`Session`]s and finished
/// [`ReplayReport`]s, so the harnesses can differentially compare
/// across engines, worker counts and driving styles.
pub trait MonitorVisible {
    fn instrs(&self) -> u64;
    fn events_seen(&self) -> u64;
    fn state(&self) -> &MetadataState;
    fn reports(&self) -> Vec<String>;
    /// The accelerator counters that must not depend on the execution
    /// engine (the cycle/stall counters legitimately do).
    fn functional_counters(&self) -> Option<[u64; 7]>;
}

impl MonitorVisible for MonitoringSystem {
    fn instrs(&self) -> u64 {
        MonitoringSystem::instrs(self)
    }
    fn events_seen(&self) -> u64 {
        MonitoringSystem::events_seen(self)
    }
    fn state(&self) -> &MetadataState {
        MonitoringSystem::state(self)
    }
    fn reports(&self) -> Vec<String> {
        self.monitor().reports()
    }
    fn functional_counters(&self) -> Option<[u64; 7]> {
        self.fade_stats().map(|f| f.functional_counters())
    }
}

impl MonitorVisible for Session {
    fn instrs(&self) -> u64 {
        Session::instrs(self)
    }
    fn events_seen(&self) -> u64 {
        Session::events_seen(self)
    }
    fn state(&self) -> &MetadataState {
        Session::state(self)
    }
    fn reports(&self) -> Vec<String> {
        self.monitor().reports()
    }
    fn functional_counters(&self) -> Option<[u64; 7]> {
        self.fade_stats().map(|f| f.functional_counters())
    }
}

impl MonitorVisible for ReplayReport {
    fn instrs(&self) -> u64 {
        self.instrs
    }
    fn events_seen(&self) -> u64 {
        self.events_seen
    }
    fn state(&self) -> &MetadataState {
        &self.final_state
    }
    fn reports(&self) -> Vec<String> {
        self.violations.clone()
    }
    fn functional_counters(&self) -> Option<[u64; 7]> {
        self.functional_counters
    }
}

/// Everything a monitor can observe must be identical between two runs
/// over the same trace prefix.
pub fn assert_monitor_visible_equal(
    a: &impl MonitorVisible,
    b: &impl MonitorVisible,
    what: &str,
) {
    assert_eq!(a.instrs(), b.instrs(), "{what}: instruction counts");
    assert_eq!(a.events_seen(), b.events_seen(), "{what}: event counts");
    assert!(a.state() == b.state(), "{what}: final MetadataState");
    assert_eq!(a.reports(), b.reports(), "{what}: violation sets");
    assert_eq!(
        a.functional_counters(),
        b.functional_counters(),
        "{what}: functional accelerator counters"
    );
}
