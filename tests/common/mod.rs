//! Helpers shared by the differential harnesses
//! (`tests/differential.rs`, `tests/trace_replay.rs`): the definition
//! of "monitor-visible results" lives here once, so growing the
//! bit-exactness contract (a new counter, a new assertion) updates
//! every harness at the same time.

use fade_repro::prelude::*;
use fade_repro::trace::bench;

/// The benchmark suite a monitor is evaluated on (Section 6 of the
/// paper; mirrors `fade_bench::experiments::suite_for`).
pub fn suite_for(monitor: &str) -> Vec<BenchProfile> {
    match monitor {
        "AtomCheck" => bench::parallel_suite(),
        "TaintCheck" => bench::taint_suite(),
        _ => bench::spec_int_suite(),
    }
}

/// The accelerator counters that must not depend on the execution
/// engine (the cycle/stall counters legitimately do).
pub fn functional_counters(sys: &MonitoringSystem) -> Option<[u64; 7]> {
    sys.fade_stats().map(|f| f.functional_counters())
}

/// Everything a monitor can observe must be identical between two runs
/// over the same trace prefix.
pub fn assert_monitor_visible_equal(a: &MonitoringSystem, b: &MonitoringSystem, what: &str) {
    assert_eq!(a.instrs(), b.instrs(), "{what}: instruction counts");
    assert_eq!(a.events_seen(), b.events_seen(), "{what}: event counts");
    assert!(a.state() == b.state(), "{what}: final MetadataState");
    assert_eq!(
        a.monitor().reports(),
        b.monitor().reports(),
        "{what}: violation sets"
    );
    assert_eq!(
        functional_counters(a),
        functional_counters(b),
        "{what}: functional accelerator counters"
    );
}
