//! Differential test harness: batched execution vs the cycle-accurate
//! reference engine.
//!
//! The batched system mode ([`MonitoringSystem::run_batched`]) promises
//! two things, and this harness is the contract that makes refactoring
//! either engine safe:
//!
//! 1. **Bit-exact monitor results.** For every monitor and benchmark
//!    profile, the final [`MetadataState`], the violation reports, and
//!    the accelerator's functional event counters (filtered / partial /
//!    unfiltered / stack / high-level / shots) are identical to a
//!    cycle-accurate run over the same trace prefix.
//! 2. **Sampled timing within tolerance.** The extrapolated cycle count
//!    is within [`CYCLE_TOLERANCE`] of the exact cycle count on
//!    full-size traces.

use fade_repro::monitors::all_monitors;
use fade_repro::prelude::*;
use fade_repro::system::measure_system_throughput;
use fade_repro::trace::bench;

mod common;
use common::{assert_monitor_visible_equal, suite_for};

/// Documented tolerance of the sampled cycle estimate vs a full
/// cycle-accurate simulation (relative error), at the *default*
/// (25%-sampled) configuration, on both the app-bound and the
/// congested monitor-bound workload. The congestion-carrying sampling
/// window (handler-backlog seed + steady-state tail residual) is what
/// holds the monitor-bound point inside this bound without denser
/// sampling; this test is the accuracy-regression gate that keeps the
/// drained-queue bias from silently returning.
const CYCLE_TOLERANCE: f64 = 0.05;

/// Instructions per (monitor, benchmark) point in the exhaustive sweep:
/// small traces, since the sweep covers every pair.
const SWEEP_INSTRS: u64 = 25_000;

/// Runs one session over exactly `instrs` instructions with the given
/// engine, drained so nothing is left in flight.
fn run(bench: &BenchProfile, monitor: &str, cfg: &SystemConfig, instrs: u64, batched: bool) -> Session {
    let engine = if batched { Engine::batched() } else { Engine::Cycle };
    let mut sys = Session::builder()
        .monitor(monitor)
        .source(bench)
        .engine(engine)
        .config(*cfg)
        .build()
        .unwrap_or_else(|e| panic!("{monitor}/{}: {e}", bench.name));
    sys.run_exact(instrs).unwrap();
    sys.drain().unwrap();
    sys
}

/// Every monitor, over a small trace of each profile of its suite:
/// batched mode is bit-exact with cycle mode in everything a monitor
/// can observe.
#[test]
fn batched_matches_cycle_for_every_monitor_and_profile() {
    for monitor in all_monitors() {
        let name = monitor.name();
        for b in suite_for(name) {
            // A sampling period small enough that every trace exercises
            // several batch→cycle→batch transitions.
            let cfg = SystemConfig::fade_single_core()
                .with_sample_period(1024)
                .with_sample_window(256);
            let cycle = run(&b, name, &cfg, SWEEP_INSTRS, false);
            let batched = run(&b, name, &cfg, SWEEP_INSTRS, true);
            assert!(batched.batch_stats().events > 0, "{name}/{}: batched path unused", b.name);
            assert_monitor_visible_equal(&cycle, &batched, &format!("{name}/{}", b.name));
        }
    }
}

/// The blocking filtering mode follows the same differential contract
/// (its batched fallback pays the resume latency in `settle`).
#[test]
fn batched_matches_cycle_in_blocking_mode() {
    let b = bench::by_name("gcc").unwrap();
    let cfg = SystemConfig::fade_single_core()
        .with_mode(FilterMode::Blocking)
        .with_sample_period(1024)
        .with_sample_window(256);
    let cycle = run(&b, "MemLeak", &cfg, SWEEP_INSTRS, false);
    let batched = run(&b, "MemLeak", &cfg, SWEEP_INSTRS, true);
    assert_monitor_visible_equal(&cycle, &batched, "MemLeak/gcc blocking");
}

/// Sampled cycle estimates stay within the documented tolerances of
/// the exact cycle count on full-size (200k-event) traces — the
/// acceptance bar of the batched system mode, and the regression guard
/// for the estimator. Each point also demonstrates a real wall-clock
/// speedup over cycle-accurate execution (asserted conservatively:
/// wall-clock is noisy in CI; the measured ratios — ~2× on
/// hmmer/AddrCheck, ~2.4–2.7× on gcc/MemLeak at the default sampling
/// configuration — are reported by `reproduce_all`).
/// (`measure_system_throughput` also re-checks bit-exactness.)
#[test]
fn sampled_cycle_estimates_within_tolerance() {
    // Wall-clock speedups are asserted on the best of a few attempts:
    // the simulated-cycle checks are deterministic, but the timing
    // ratio compares two wall-clock measurements and the workspace test
    // run saturates every core (the sharded-matrix suite spawns worker
    // threads), so a single contended measurement can schedule one
    // engine away. A real regression — batched genuinely no faster —
    // fails every attempt.
    fn assert_speedup_with_retry(
        measure: impl Fn() -> fade_repro::system::SystemThroughputReport,
        bar: f64,
        what: &str,
    ) {
        let mut best = 0.0f64;
        for _ in 0..3 {
            best = best.max(measure().speedup());
            if best > bar {
                return;
            }
        }
        panic!("{what}: batched mode should beat cycle mode by {bar}x (best of 3: {best:.2}x)");
    }

    // Both evaluation points run the *default* 25%-sampled
    // configuration: since the congestion-carrying sampling window, the
    // monitor-bound gcc/MemLeak point no longer needs denser sampling
    // to reach ±5% (measured: ~-0.6% vs ~-7% before the fix).
    let points = [
        ("hmmer", "AddrCheck", SystemConfig::fade_single_core(), 1.3),
        ("gcc", "MemLeak", SystemConfig::fade_single_core(), 1.5),
    ];
    for (bench_name, monitor, cfg, speedup_bar) in points {
        let b = bench::by_name(bench_name).unwrap();
        let r = measure_system_throughput(&b, monitor, &cfg, 200_000);
        assert!(
            r.cycle_error() <= CYCLE_TOLERANCE,
            "{bench_name}/{monitor}: estimated {} vs exact {} cycles ({:.2}% error, tolerance {:.0}%)",
            r.estimated_cycles,
            r.exact_cycles,
            100.0 * r.cycle_error(),
            100.0 * CYCLE_TOLERANCE,
        );
        if r.speedup() <= speedup_bar {
            assert_speedup_with_retry(
                || measure_system_throughput(&b, monitor, &cfg, 200_000),
                speedup_bar,
                &format!("{bench_name}/{monitor}"),
            );
        }
    }
    // Denser 50% sampling must stay inside the same tolerance on the
    // congested point (accuracy can only improve with more windows).
    let b = bench::by_name("gcc").unwrap();
    let dense = SystemConfig::fade_single_core()
        .with_sample_period(8_192)
        .with_sample_window(4_096);
    let r = measure_system_throughput(&b, "MemLeak", &dense, 200_000);
    assert!(
        r.cycle_error() <= CYCLE_TOLERANCE,
        "gcc/MemLeak at 50% sampling: {:.2}% error, tolerance {:.0}%",
        100.0 * r.cycle_error(),
        100.0 * CYCLE_TOLERANCE,
    );
}

/// Documented bound on the production-rate 95% CI (`rel_half_width` of
/// the total cycle estimate) at the default 25% sampling, for
/// app-bound workloads: the residual is a few percent of the total, so
/// even a loose residual interval pins the rate tightly.
const RATE_CI_APP_BOUND: f64 = 0.10;

/// Same bound for the congested monitor-bound workload. gcc/MemLeak's
/// residual is ~half the total cycle count and its window-to-window
/// spread is genuine long-wave queueing (queue-full commit stalls
/// alternating with handler idle — burst-phase episodes that no
/// batched-path-observable covariate predicts), so with 12 windows the
/// honest interval sits near ±17%; the ≤10% ROADMAP goal would need
/// denser sampling, which the cycle-accuracy bound forbids at 25%.
/// This guard keeps the interval from regressing while the gap stays
/// an open ROADMAP item.
const RATE_CI_MONITOR_BOUND: f64 = 0.25;

/// The production-rate confidence interval stays inside the documented
/// bounds at the default sampling configuration, and the estimator
/// publishes its per-stratum breakdown (the schema-v7 columns). This is
/// the release-CI accuracy step's second gate, next to the
/// [`CYCLE_TOLERANCE`] bound on the point estimate.
#[test]
fn sampled_rate_ci_within_bounds() {
    let points = [
        ("hmmer", "AddrCheck", RATE_CI_APP_BOUND),
        ("gcc", "MemLeak", RATE_CI_MONITOR_BOUND),
    ];
    for (bench_name, monitor, bound) in points {
        let b = bench::by_name(bench_name).unwrap();
        let cfg = SystemConfig::fade_single_core();
        let r = measure_system_throughput(&b, monitor, &cfg, 200_000);
        let rel = r.rel_half_width.unwrap_or_else(|| {
            panic!("{bench_name}/{monitor}: default sampling must produce a CI")
        });
        assert!(
            rel <= bound,
            "{bench_name}/{monitor}: production-rate CI half-width {rel:.3} over bound {bound}",
        );
        // The per-stratum breakdown must be present and well-formed:
        // every merged stratum holds enough windows for its own
        // variance estimate, and the windows add up.
        assert!(!r.strata.is_empty(), "{bench_name}/{monitor}: no stratum rows");
        let windows: usize = r.strata.iter().map(|s| s.windows).sum();
        for s in &r.strata {
            assert!(
                s.windows >= fade_repro::sim::StratifiedEstimator::MIN_STRATUM_WINDOWS
                    || r.strata.len() == 1,
                "{bench_name}/{monitor}: stratum {} kept only {} windows",
                s.stratum,
                s.windows,
            );
        }
        assert!(windows >= 2, "{bench_name}/{monitor}: too few windows: {windows}");
    }
}

/// Unaccelerated systems take the documented fallback: `run_batched`
/// runs them cycle-accurately, so results (and timing) match exactly.
#[test]
fn unaccelerated_batched_falls_back_to_cycle() {
    let b = bench::by_name("mcf").unwrap();
    let cfg = SystemConfig::unaccelerated_single_core();
    let cycle = run(&b, "AddrCheck", &cfg, 15_000, false);
    let batched = run(&b, "AddrCheck", &cfg, 15_000, true);
    assert_monitor_visible_equal(&cycle, &batched, "AddrCheck/mcf unaccelerated");
    assert_eq!(cycle.cycles(), batched.cycles(), "fallback timing is exact");
    assert_eq!(batched.batch_stats().events, 0);
}
