//! Lane-level differential harness: the vectorized SoA filtering core
//! vs the scalar batched engine.
//!
//! The vectorized kernel ([`fade::Fade::run_batch_vectorized`],
//! selected per session with
//! [`SystemConfig::with_batch_lanes`]) promises *bit-exactness*, not
//! approximation: for every monitor × suite, driving the same trace
//! through scalar (`batch_lanes = 1`) and vectorized
//! (`batch_lanes > 1`) sessions must produce identical
//!
//! * monitor-visible results — final `MetadataState`, violation
//!   reports, functional accelerator counters;
//! * the **full** `FadeStats`, including busy cycles and TLB/MD-miss
//!   stall cycles (the vectorized path must retire warm filtered
//!   events with exactly the scalar loop's accounting, LRU motion and
//!   stall arithmetic);
//! * `BatchStats` — fast-path/fallback/dispatched classification, so
//!   `fast_path_fraction` stays comparable across engine generations;
//! * the sampled timing surface — estimated cycles, per-window samples
//!   and carried congestion seeds (`RunStats` and its sampling CIs are
//!   derived from these).
//!
//! Any divergence — a lane retiring with different counters, an LRU
//! moving differently, a sampling window seeing different state — is a
//! kernel bug, and this harness is the gate that catches it.

use fade_repro::monitors::all_monitors;
use fade_repro::prelude::*;
use fade_repro::trace::bench;

mod common;
use common::{assert_monitor_visible_equal, suite_for};

/// Instructions per (monitor, benchmark) point in the exhaustive sweep.
const SWEEP_INSTRS: u64 = 25_000;

/// Runs one batched session with the given SoA lane width (1 = the
/// scalar tier-A loop), drained so nothing is left in flight.
fn run_lanes(
    bench: &BenchProfile,
    monitor: &str,
    cfg: &SystemConfig,
    instrs: u64,
    lanes: usize,
) -> Session {
    let mut sys = Session::builder()
        .monitor(monitor)
        .source(bench)
        .engine(Engine::batched())
        .config(cfg.with_batch_lanes(lanes))
        .build()
        .unwrap_or_else(|e| panic!("{monitor}/{}: {e}", bench.name));
    sys.run_exact(instrs).unwrap();
    sys.drain().unwrap();
    sys
}

/// The full bit-exactness contract between a scalar and a vectorized
/// session over the same trace prefix.
fn assert_bit_exact(scalar: &Session, vector: &Session, what: &str) {
    assert_monitor_visible_equal(scalar, vector, what);
    assert_eq!(
        scalar.fade_stats(),
        vector.fade_stats(),
        "{what}: full FadeStats (incl. busy/stall cycles)"
    );
    assert_eq!(
        scalar.batch_stats(),
        vector.batch_stats(),
        "{what}: BatchStats classification"
    );
    assert_eq!(scalar.cycles(), vector.cycles(), "{what}: sampled cycles");
    assert_eq!(
        scalar.estimated_total_cycles(),
        vector.estimated_total_cycles(),
        "{what}: estimated total cycles"
    );
    assert_eq!(
        scalar.sampled_windows(),
        vector.sampled_windows(),
        "{what}: per-window cycle samples (sampling CIs)"
    );
    assert_eq!(
        scalar.carried_seed_cycles(),
        vector.carried_seed_cycles(),
        "{what}: carried congestion seed"
    );
}

/// Every monitor, over a small trace of each profile of its suite: the
/// vectorized engine is bit-exact with the scalar batched engine in
/// everything — stats, timing samples, metadata, violations.
#[test]
fn vectorized_matches_scalar_for_every_monitor_and_suite() {
    for monitor in all_monitors() {
        let name = monitor.name();
        for b in suite_for(name) {
            // A sampling period small enough that every trace exercises
            // several batch→cycle→batch transitions.
            let cfg = SystemConfig::fade_single_core()
                .with_sample_period(1024)
                .with_sample_window(256);
            let scalar = run_lanes(&b, name, &cfg, SWEEP_INSTRS, 1);
            let vector = run_lanes(&b, name, &cfg, SWEEP_INSTRS, 16);
            assert!(
                vector.batch_stats().events > 0,
                "{name}/{}: batched path unused",
                b.name
            );
            assert_bit_exact(&scalar, &vector, &format!("{name}/{}", b.name));
        }
    }
}

/// Blocking mode dispatches stall the pipeline mid-block (the settle
/// invalidates the MRU window); the vectorized path must replay the
/// remaining lanes exactly like the scalar loop.
#[test]
fn vectorized_matches_scalar_in_blocking_mode() {
    let cfg = SystemConfig::fade_single_core()
        .with_mode(FilterMode::Blocking)
        .with_sample_period(1024)
        .with_sample_window(256);
    for (bench_name, monitor) in [("gcc", "MemLeak"), ("hmmer", "AddrCheck")] {
        let b = bench::by_name(bench_name).unwrap();
        let scalar = run_lanes(&b, monitor, &cfg, SWEEP_INSTRS, 1);
        let vector = run_lanes(&b, monitor, &cfg, SWEEP_INSTRS, 16);
        assert_bit_exact(
            &scalar,
            &vector,
            &format!("{monitor}/{bench_name} blocking"),
        );
    }
}

/// Every lane width agrees — including widths that split blocks at odd
/// boundaries (misaligned tails shorter than a lane are the norm at
/// width 3 and 5).
#[test]
fn every_lane_width_matches_scalar() {
    let b = bench::by_name("hmmer").unwrap();
    let cfg = SystemConfig::fade_single_core()
        .with_sample_period(2048)
        .with_sample_window(512);
    let scalar = run_lanes(&b, "AddrCheck", &cfg, SWEEP_INSTRS, 1);
    for lanes in [2, 3, 5, 8, 16] {
        let vector = run_lanes(&b, "AddrCheck", &cfg, SWEEP_INSTRS, lanes);
        assert_bit_exact(&scalar, &vector, &format!("AddrCheck/hmmer w={lanes}"));
    }
}

/// The vectorized batched engine also matches the cycle-accurate
/// reference in everything a monitor can observe (transitively implied
/// by the scalar differential suite, asserted directly here so the
/// vectorized engine's contract does not depend on test composition).
#[test]
fn vectorized_matches_cycle_reference() {
    let b = bench::by_name("gcc").unwrap();
    let cfg = SystemConfig::fade_single_core()
        .with_sample_period(1024)
        .with_sample_window(256);
    let mut cycle = Session::builder()
        .monitor("MemLeak")
        .source(&b)
        .engine(Engine::Cycle)
        .config(cfg)
        .build()
        .unwrap();
    cycle.run_exact(SWEEP_INSTRS).unwrap();
    cycle.drain().unwrap();
    let vector = run_lanes(&b, "MemLeak", &cfg, SWEEP_INSTRS, 16);
    assert_monitor_visible_equal(&cycle, &vector, "MemLeak/gcc cycle vs vectorized");
}
