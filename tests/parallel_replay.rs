//! Parallel-replay differential harness: epoch-parallel speculative
//! replay ([`SessionBuilder::parallel_replay`] + [`Session::replay_all`])
//! must be bit-exact with sequential replay in everything a monitor can
//! observe — for every monitor × benchmark pair and worker counts
//! {1, 2, 4} — and bit-*identical* across worker counts (the epoch
//! partition derives from the trace, never from parallelism).
//!
//! The forced-misprediction regression closes the loop: a deliberately
//! stale entry checkpoint must be caught by the validate-and-merge join
//! and re-run, still yielding the exact sequential result.

use fade_repro::monitors::all_monitors;
use fade_repro::prelude::*;
use fade_repro::trace::{bench, TraceMeta, TraceRecord};

mod common;
use common::{assert_monitor_visible_equal, suite_for};

/// Instructions per (monitor, benchmark) point: small traces, since the
/// sweep covers every pair four ways (serial + three worker counts).
const SWEEP_INSTRS: u64 = 12_000;

/// A sampling configuration small enough that every epoch crosses
/// several batch→cycle→batch transitions.
fn cfg() -> SystemConfig {
    SystemConfig::fade_single_core()
        .with_sample_period(1024)
        .with_sample_window(256)
}

/// The trace prefix holding the first `n_instrs` instruction records
/// (the generator is deterministic per seed).
fn record_prefix(b: &BenchProfile, seed: u64, n_instrs: u64) -> Vec<TraceRecord> {
    let mut prog = SyntheticProgram::new(b, seed);
    let mut records = Vec::new();
    let mut instrs = 0u64;
    while instrs < n_instrs {
        let r = prog.next_record();
        if matches!(r, TraceRecord::Instr(_)) {
            instrs += 1;
        }
        records.push(r);
    }
    records
}

/// Replays the whole record buffer: sequentially (`workers == 0`) or as
/// parallel epochs, optionally with one poisoned entry checkpoint.
fn replay(
    b: &BenchProfile,
    monitor: &str,
    records: Vec<TraceRecord>,
    workers: usize,
    stale: Option<usize>,
) -> ReplayReport {
    let mut builder = Session::builder()
        .monitor(monitor)
        .source((b.clone(), records))
        .engine(Engine::batched())
        .config(cfg());
    if workers > 0 {
        builder = builder.parallel_replay(workers);
    }
    if let Some(e) = stale {
        builder = builder.inject_stale_epoch(e);
    }
    builder
        .build()
        .unwrap_or_else(|e| panic!("{monitor}/{}: build failed: {e}", b.name))
        .replay_all()
        .unwrap_or_else(|e| panic!("{monitor}/{}: replay failed: {e}", b.name))
}

/// For every monitor and every benchmark of its suite: replay the same
/// trace sequentially and at workers {1, 2, 4}. Every parallel result
/// must be monitor-visibly bit-exact with the sequential one, fully
/// speculation-validated (the predictor is functionally exact), and
/// bit-identical — *including* cycle estimates and epoch stats — across
/// worker counts.
#[test]
fn parallel_replay_is_bit_exact_for_every_monitor_and_suite() {
    for monitor in all_monitors() {
        let name = monitor.name();
        for b in suite_for(name) {
            let records = record_prefix(&b, cfg().seed, SWEEP_INSTRS);
            let serial = replay(&b, name, records.clone(), 0, None);
            assert_eq!(serial.epochs.epochs, 0, "{name}/{}: serial ran epochs", b.name);

            let mut baseline: Option<ReplayReport> = None;
            for workers in [1usize, 2, 4] {
                let par = replay(&b, name, records.clone(), workers, None);
                assert_monitor_visible_equal(
                    &serial,
                    &par,
                    &format!("{name}/{} workers={workers}", b.name),
                );
                assert!(
                    par.epochs.epochs > 1,
                    "{name}/{}: trace did not split into epochs",
                    b.name
                );
                assert_eq!(
                    par.epochs.validated, par.epochs.epochs,
                    "{name}/{}: clean speculation failed validation",
                    b.name
                );
                assert_eq!(par.epochs.rerun, 0, "{name}/{}: spurious re-run", b.name);
                match &baseline {
                    None => baseline = Some(par),
                    Some(base) => {
                        // Full bit-identity across worker counts: even
                        // the timing estimate and the batch statistics
                        // may depend only on the trace and the epoch
                        // partition, never on the worker count.
                        assert_monitor_visible_equal(
                            base,
                            &par,
                            &format!("{name}/{} workers=1 vs {workers}", b.name),
                        );
                        assert_eq!(
                            base.estimated_cycles, par.estimated_cycles,
                            "{name}/{}: cycle estimate depends on worker count",
                            b.name
                        );
                        assert_eq!(
                            base.batch, par.batch,
                            "{name}/{}: batch stats depend on worker count",
                            b.name
                        );
                        assert_eq!(
                            base.epochs, par.epochs,
                            "{name}/{}: epoch stats depend on worker count",
                            b.name
                        );
                    }
                }
            }
        }
    }
}

/// A deliberately stale entry checkpoint (the builder's hidden
/// `inject_stale_epoch` hook flips one shadow byte in epoch 1's
/// predicted entry state) must be detected by the join's digest
/// validation and re-run from the committed predecessor — and the
/// final result must still be bit-exact with the sequential replay.
#[test]
fn forced_misprediction_is_detected_and_rerun() {
    let b = bench::by_name("gcc").unwrap();
    let records = record_prefix(&b, cfg().seed, SWEEP_INSTRS);
    let serial = replay(&b, "MemCheck", records.clone(), 0, None);

    let stale = replay(&b, "MemCheck", records.clone(), 4, Some(1));
    assert!(
        stale.epochs.rerun >= 1,
        "poisoned checkpoint was not detected: {:?}",
        stale.epochs
    );
    assert!(
        stale.epochs.validated < stale.epochs.epochs,
        "every epoch validated despite the poisoned checkpoint"
    );
    assert_monitor_visible_equal(&serial, &stale, "MemCheck/gcc forced misprediction");

    // The recovery must also be bit-identical to an unpoisoned parallel
    // replay in everything monitor-visible *and* in timing (the re-run
    // epoch uses the same per-epoch commit seed).
    let clean = replay(&b, "MemCheck", records, 4, None);
    assert_monitor_visible_equal(&clean, &stale, "MemCheck/gcc recovery vs clean");
    assert_eq!(clean.estimated_cycles, stale.estimated_cycles, "recovery timing");
    assert_eq!(clean.batch, stale.batch, "recovery batch stats");
}

/// Parallel replay straight from a `.fadet` file on disk: the epoch
/// split comes from the file's own chunk-offset index (the v2 trailer),
/// and the result must match the sequential streamed replay of the same
/// file.
#[test]
fn trace_file_parallel_replay_uses_chunk_index() {
    let b = bench::by_name("mcf").unwrap();
    let records = record_prefix(&b, cfg().seed, SWEEP_INSTRS);
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("parallel_replay.fadet");
    fade_repro::trace::write_trace_file(&path, &TraceMeta::new("mcf", cfg().seed), &records)
        .unwrap();

    let serial = Session::builder()
        .monitor("AddrCheck")
        .source(path.as_path())
        .engine(Engine::batched())
        .config(cfg())
        .build()
        .unwrap()
        .replay_all()
        .unwrap();
    let parallel = Session::builder()
        .monitor("AddrCheck")
        .source(path.as_path())
        .engine(Engine::batched())
        .config(cfg())
        .parallel_replay(4)
        .build()
        .unwrap()
        .replay_all()
        .unwrap();
    assert!(parallel.epochs.epochs > 1, "file did not split into epochs");
    assert_eq!(parallel.epochs.rerun, 0);
    assert_monitor_visible_equal(&serial, &parallel, "AddrCheck/mcf file parallel replay");
}

/// The cycle-accurate engine can also replay in parallel epochs:
/// monitor-visible results stay bit-exact with its sequential replay
/// (cycle totals are per-epoch realizations and legitimately differ
/// from one continuous sequential realization).
#[test]
fn cycle_engine_parallel_replay_is_monitor_visibly_exact() {
    let b = bench::by_name("mcf").unwrap();
    let records = record_prefix(&b, cfg().seed, 8_000);
    let run = |workers: usize| {
        let mut builder = Session::builder()
            .monitor("AddrCheck")
            .source((b.clone(), records.clone()))
            .engine(Engine::Cycle)
            .config(cfg());
        if workers > 0 {
            builder = builder.parallel_replay(workers);
        }
        builder.build().unwrap().replay_all().unwrap()
    };
    let serial = run(0);
    let parallel = run(2);
    assert!(parallel.epochs.epochs > 1);
    assert_monitor_visible_equal(&serial, &parallel, "AddrCheck/mcf cycle-engine parallel");
}

/// Sessions that cannot speculate (no accelerator to run the predictor
/// on) silently fall back to sequential replay with identical results.
#[test]
fn unaccelerated_sessions_fall_back_to_sequential() {
    let b = bench::by_name("mcf").unwrap();
    let records = record_prefix(&b, cfg().seed, 8_000);
    let run = |parallel: bool| {
        let mut builder = Session::builder()
            .monitor("MemLeak")
            .source((b.clone(), records.clone()))
            .engine(Engine::Unaccelerated)
            .config(cfg());
        if parallel {
            builder = builder.parallel_replay(4);
        }
        builder.build().unwrap().replay_all().unwrap()
    };
    let plain = run(false);
    let asked = run(true);
    assert_eq!(asked.epochs.epochs, 0, "unaccelerated session speculated");
    assert_monitor_visible_equal(&plain, &asked, "MemLeak/mcf unaccelerated fallback");
    assert_eq!(plain.estimated_cycles, asked.estimated_cycles);
}
