//! Multi-shot filtering end-to-end: MemCheck programmed with two-shot
//! chains must classify identically to the single-shot encoding and
//! produce the same metadata — only the shot count (filter-stage
//! cycles) differs.

use fade_repro::isa::{layout, Reg, VirtAddr};
use fade_repro::monitors::MemCheck;
use fade_repro::prelude::*;
use fade_repro::system::baseline_cycles;

fn fingerprint(sys: &Session) -> Vec<u8> {
    let mut f: Vec<u8> = Reg::all().map(|r| sys.state().reg_meta(r)).collect();
    for i in 0..64 {
        f.push(sys.state().mem_meta(VirtAddr::new(layout::GLOBALS_BASE + i * 4)));
        f.push(sys.state().mem_meta(VirtAddr::new(layout::HEAP_BASE + i * 4)));
    }
    f
}

#[test]
fn multi_shot_is_functionally_identical_and_costs_shots() {
    let b = bench::by_name("gcc").unwrap();
    let cfg = SystemConfig::fade_single_core();
    let warm = 10_000;
    let meas = 60_000;

    let run = |program: fade_repro::accel::FadeProgram| {
        let mut sys = Session::builder()
            .monitor("memcheck")
            .source(&b)
            .program(program)
            .config(cfg)
            .build()
            .unwrap();
        sys.run(warm).unwrap();
        sys.start_measure();
        sys.run(meas).unwrap();
        let base = baseline_cycles(&b, cfg.core, cfg.seed, warm, meas);
        let fp = fingerprint(&sys);
        (sys.finish(base).unwrap().stats, fp)
    };

    let single_mon = MemCheck::new();
    let (single, fp_single) = run(single_mon.program());
    let (multi, fp_multi) = run(MemCheck::new().program_multi_shot());

    let fs = single.fade.unwrap();
    let fm = multi.fade.unwrap();

    // Identical classification (up to the handful of events still in
    // flight when the instruction-count window cuts off) and metadata.
    let ratio_s = fs.filtering_ratio();
    let ratio_m = fm.filtering_ratio();
    assert!(
        (ratio_s - ratio_m).abs() < 0.005,
        "filtering ratios must match: {ratio_s:.4} vs {ratio_m:.4}"
    );
    let diff = fp_single
        .iter()
        .zip(&fp_multi)
        .filter(|(a, b)| a != b)
        .count();
    assert!(
        diff <= 4,
        "metadata must not depend on encoding beyond in-flight skew ({diff} bytes differ)"
    );

    // Multi-shot pays one extra shot for every chained (memory) event.
    assert!(
        fm.shots > fs.shots,
        "chained encoding must evaluate more shots: {} vs {}",
        fm.shots,
        fs.shots
    );
    // ... and therefore runs no faster.
    assert!(multi.cycles >= single.cycles);
}
