//! Cross-crate integration tests: end-to-end invariants over the full
//! simulation stack (DESIGN.md section 5).

use fade_repro::accel::FilterMode;
use fade_repro::isa::{layout, Reg, VirtAddr};
use fade_repro::prelude::*;

const WARM: u64 = 10_000;
const MEAS: u64 = 60_000;

/// Builder-constructed equivalent of the deprecated `run_experiment`
/// free function (`tests/session_equivalence.rs` pins the two paths
/// bit-exact).
fn run_experiment(
    b: &BenchProfile,
    monitor: &str,
    cfg: &SystemConfig,
    warmup: u64,
    measure: u64,
) -> RunStats {
    Session::builder()
        .monitor(monitor)
        .source(b)
        .config(*cfg)
        .build()
        .unwrap()
        .run_measured(warmup, measure)
        .unwrap()
        .stats
}

/// A cycle-engine session over `b` with `cfg`.
fn session(b: &BenchProfile, monitor: &str, cfg: &SystemConfig) -> Session {
    Session::builder()
        .monitor(monitor)
        .source(b)
        .config(*cfg)
        .build()
        .unwrap()
}

/// Addresses sampled for state-equality checks: globals, early heap,
/// top-of-stack territory.
fn probe_addrs() -> Vec<VirtAddr> {
    let mut v = Vec::new();
    for i in 0..64 {
        v.push(VirtAddr::new(layout::GLOBALS_BASE + i * 4));
        v.push(VirtAddr::new(layout::HEAP_BASE + i * 4));
        v.push(VirtAddr::new(layout::STACK_TOP - 4096 + i * 4));
    }
    v
}

fn state_fingerprint(sys: &Session) -> Vec<u8> {
    let mut f = Vec::new();
    for r in Reg::all() {
        f.push(sys.state().reg_meta(r));
    }
    for a in probe_addrs() {
        f.push(sys.state().mem_meta(a));
    }
    f
}

/// Invariant 8: same seed, same everything.
#[test]
fn runs_are_deterministic() {
    let b = bench::by_name("gcc").unwrap();
    for cfg in [
        SystemConfig::fade_single_core(),
        SystemConfig::unaccelerated_single_core(),
    ] {
        let a = run_experiment(&b, "MemLeak", &cfg, WARM, MEAS);
        let z = run_experiment(&b, "MemLeak", &cfg, WARM, MEAS);
        assert_eq!(a.cycles, z.cycles, "{}", cfg.label());
        assert_eq!(a.monitored_events, z.monitored_events);
        assert_eq!(a.stack_events, z.stack_events);
    }
}

/// Invariant 5 at system scale: blocking and non-blocking FADE produce
/// the same final metadata and the same event classification.
#[test]
fn blocking_and_non_blocking_agree_functionally() {
    let b = bench::by_name("mcf").unwrap();
    for monitor in ["AddrCheck", "MemCheck", "MemLeak", "TaintCheck"] {
        let mut nb = session(&b, monitor, &SystemConfig::fade_single_core());
        let mut blk = session(
            &b,
            monitor,
            &SystemConfig::fade_single_core().with_mode(FilterMode::Blocking),
        );
        nb.run(50_000).unwrap();
        blk.run(50_000).unwrap();
        assert_eq!(
            state_fingerprint(&nb),
            state_fingerprint(&blk),
            "{monitor}: metadata must not depend on the filtering mode"
        );
        assert!(
            blk.cycles() >= nb.cycles(),
            "{monitor}: blocking cannot be faster"
        );
    }
}

/// Hardware path and pure-software path converge to the same metadata
/// on a full workload (invariants 1+2 at system scale).
#[test]
fn fade_and_software_agree_functionally() {
    let b = bench::by_name("gobmk").unwrap();
    for monitor in ["AddrCheck", "MemCheck", "MemLeak", "TaintCheck"] {
        let mut hw = session(&b, monitor, &SystemConfig::fade_single_core());
        let mut sw = session(&b, monitor, &SystemConfig::unaccelerated_single_core());
        hw.run(50_000).unwrap();
        sw.run(50_000).unwrap();
        assert_eq!(
            state_fingerprint(&hw),
            state_fingerprint(&sw),
            "{monitor}: acceleration must be functionally invisible"
        );
    }
}

/// Invariant 4: every instruction event is accounted for exactly once.
#[test]
fn event_conservation() {
    let b = bench::by_name("astar").unwrap();
    for monitor in ["AddrCheck", "MemLeak", "AtomCheck"] {
        let bench_profile = if monitor == "AtomCheck" {
            bench::by_name("water").unwrap()
        } else {
            b.clone()
        };
        let s = run_experiment(
            &bench_profile,
            monitor,
            &SystemConfig::fade_single_core(),
            WARM,
            MEAS,
        );
        let f = s.fade.expect("accelerated run");
        assert_eq!(
            f.instr_events,
            f.filtered + f.partial_hits + f.unfiltered_instr,
            "{monitor}: filtered + partial + unfiltered must cover all events"
        );
    }
}

/// The headline result holds end-to-end: FADE beats the unaccelerated
/// system for every monitor, and non-blocking beats blocking for the
/// low-filtering-ratio monitors (Section 7.5).
#[test]
fn headline_orderings_hold() {
    let pairs = [
        ("AddrCheck", "gcc"),
        ("MemCheck", "gcc"),
        ("MemLeak", "gcc"),
        ("TaintCheck", "astar-taint"),
        ("AtomCheck", "water"),
    ];
    for (monitor, wl) in pairs {
        let b = bench::by_name(wl).unwrap();
        let un = run_experiment(
            &b,
            monitor,
            &SystemConfig::unaccelerated_single_core(),
            WARM,
            MEAS,
        );
        let fa = run_experiment(&b, monitor, &SystemConfig::fade_single_core(), WARM, MEAS);
        assert!(
            un.slowdown() > fa.slowdown(),
            "{monitor}/{wl}: unaccel {:.2} must exceed FADE {:.2}",
            un.slowdown(),
            fa.slowdown()
        );
    }
    // Non-blocking benefit concentrates where filtering ratios are low.
    let b = bench::by_name("gcc").unwrap();
    let blocking = run_experiment(
        &b,
        "MemLeak",
        &SystemConfig::fade_single_core().with_mode(FilterMode::Blocking),
        WARM,
        MEAS,
    );
    let nb = run_experiment(&b, "MemLeak", &SystemConfig::fade_single_core(), WARM, MEAS);
    assert!(
        blocking.slowdown() / nb.slowdown() > 1.2,
        "non-blocking should clearly win for MemLeak on gcc: {:.2} vs {:.2}",
        blocking.slowdown(),
        nb.slowdown()
    );
}

/// Filtering ratios land in the paper's bands (Table 2 shape).
#[test]
fn filtering_ratio_bands() {
    let expectations = [
        ("AddrCheck", "hmmer", 0.97, 1.0),
        ("MemCheck", "libq", 0.90, 1.0),
        ("MemLeak", "hmmer", 0.90, 1.0),
        ("MemLeak", "gcc", 0.60, 0.90), // the paper's low outlier
        ("TaintCheck", "mcf-taint", 0.70, 0.95),
        ("AtomCheck", "ocean", 0.80, 0.99),
    ];
    for (monitor, wl, lo, hi) in expectations {
        let b = bench::by_name(wl).unwrap();
        let s = run_experiment(&b, monitor, &SystemConfig::fade_single_core(), WARM, MEAS);
        let r = s.filtering_ratio();
        assert!(
            (lo..=hi).contains(&r),
            "{monitor}/{wl}: filtering ratio {r:.3} outside [{lo}, {hi}]"
        );
    }
}

/// Two-core FADE is at least as fast as single-core (Figure 11(a)).
#[test]
fn two_core_never_loses() {
    for (monitor, wl) in [("MemLeak", "gcc"), ("AtomCheck", "stream.")] {
        let b = bench::by_name(wl).unwrap();
        let one = run_experiment(&b, monitor, &SystemConfig::fade_single_core(), WARM, MEAS);
        let two = run_experiment(&b, monitor, &SystemConfig::fade_two_core(), WARM, MEAS);
        assert!(
            two.slowdown() <= one.slowdown() * 1.02,
            "{monitor}/{wl}: two-core {:.2} vs single {:.2}",
            two.slowdown(),
            one.slowdown()
        );
    }
}

/// Area/power model reproduces Section 7.6 (paper-vs-measured).
#[test]
fn power_model_matches_paper() {
    let logic = fade_repro::power::fade_logic_report(2.0);
    let cache = fade_repro::power::cache_model(4096, 2, 64, 2.0);
    let total_area = logic.area_mm2() + cache.area_mm2;
    let total_power = logic.peak_power_mw() + cache.peak_power_mw;
    assert!((total_area - 0.12).abs() / 0.12 < 0.10, "area {total_area:.3}");
    assert!((total_power - 273.0).abs() / 273.0 < 0.10, "power {total_power:.0}");
}
