//! The shims are provably lossless: for every monitor × benchmark pair
//! and every legacy entry point (`run_experiment_mode`,
//! `MonitoringSystem::from_records`, `MonitoringSystem::from_trace_file`),
//! the builder-constructed [`Session`] produces bit-exact
//! `MetadataState`, violation reports, functional accelerator counters
//! — and, for the measured-experiment path, bit-identical `RunStats` —
//! so deprecating the old constructors loses nothing.

#![allow(deprecated)] // the whole point is to exercise the legacy paths

use fade_repro::monitors::all_monitors;
use fade_repro::prelude::*;
use fade_repro::system::ReplayBuffer;
use fade_repro::trace::TraceMeta;

mod common;
use common::{assert_monitor_visible_equal, suite_for};

/// Window of the measured-experiment sweep: small, because it covers
/// every monitor × benchmark × engine point twice (legacy + session).
const WARM: u64 = 2_000;
const MEAS: u64 = 10_000;

/// A sampling configuration small enough that the batched engine
/// crosses several batch→cycle→batch transitions inside the window.
fn cfg() -> SystemConfig {
    SystemConfig::fade_single_core()
        .with_sample_period(1024)
        .with_sample_window(256)
}

/// Every deterministic field of two [`RunStats`] must match exactly.
fn assert_stats_identical(a: &RunStats, b: &RunStats, what: &str) {
    assert_eq!(a.benchmark, b.benchmark, "{what}: benchmark");
    assert_eq!(a.monitor, b.monitor, "{what}: monitor");
    assert_eq!(a.system, b.system, "{what}: system label");
    assert_eq!(a.app_instrs, b.app_instrs, "{what}: app_instrs");
    assert_eq!(a.monitored_events, b.monitored_events, "{what}: monitored_events");
    assert_eq!(a.stack_events, b.stack_events, "{what}: stack_events");
    assert_eq!(a.high_level_events, b.high_level_events, "{what}: high_level_events");
    assert_eq!(a.cycles, b.cycles, "{what}: cycles");
    assert_eq!(a.baseline_cycles, b.baseline_cycles, "{what}: baseline_cycles");
    assert_eq!(a.fade, b.fade, "{what}: accelerator stats");
    for (x, y, field) in [
        (a.class_instrs.cc, b.class_instrs.cc, "cc"),
        (a.class_instrs.ru, b.class_instrs.ru, "ru"),
        (a.class_instrs.partial, b.class_instrs.partial, "partial"),
        (a.class_instrs.complex, b.class_instrs.complex, "complex"),
        (a.class_instrs.stack, b.class_instrs.stack, "stack"),
        (a.class_instrs.high_level, b.class_instrs.high_level, "high_level"),
        (a.util.app_idle, b.util.app_idle, "app_idle"),
        (a.util.monitor_idle, b.util.monitor_idle, "monitor_idle"),
        (a.util.both, b.util.both, "both"),
    ] {
        assert_eq!(x, y, "{what}: class/util field {field}");
    }
    match (&a.sampling, &b.sampling) {
        (None, None) => {}
        (Some(x), Some(y)) => {
            assert_eq!(x.windows, y.windows, "{what}: sampling windows");
            assert_eq!(x.sampled_instrs, y.sampled_instrs, "{what}: sampled_instrs");
            assert_eq!(x.sampled_cycles, y.sampled_cycles, "{what}: sampled_cycles");
            assert_eq!(
                x.extrapolated_instrs, y.extrapolated_instrs,
                "{what}: extrapolated_instrs"
            );
            assert_eq!(
                x.extrapolated_events, y.extrapolated_events,
                "{what}: extrapolated_events"
            );
            assert_eq!(
                x.extrapolated_base_cycles, y.extrapolated_base_cycles,
                "{what}: extrapolated_base_cycles"
            );
            assert_eq!(x.cycles_lo, y.cycles_lo, "{what}: cycles_lo");
            assert_eq!(x.cycles_hi, y.cycles_hi, "{what}: cycles_hi");
            assert_eq!(
                x.residual_per_event.to_bits(),
                y.residual_per_event.to_bits(),
                "{what}: residual_per_event"
            );
        }
        _ => panic!("{what}: one run sampled, the other did not"),
    }
}

/// `run_experiment_mode` (and therefore `run_experiment`) is a lossless
/// shim: for every monitor, every benchmark of its suite, and both
/// engines, the session-built run returns bit-identical `RunStats`.
#[test]
fn session_matches_run_experiment_mode_everywhere() {
    for monitor in all_monitors() {
        let name = monitor.name();
        for b in suite_for(name) {
            for mode in [ExecMode::Cycle, ExecMode::Batched] {
                let legacy = run_experiment_mode(&b, name, &cfg(), WARM, MEAS, mode);
                let session = Session::builder()
                    .monitor(name)
                    .source(&b)
                    .engine(mode.into())
                    .config(cfg())
                    .build()
                    .unwrap()
                    .run_measured(WARM, MEAS)
                    .unwrap()
                    .stats;
                assert_stats_identical(
                    &legacy,
                    &session,
                    &format!("{name}/{} {mode:?}", b.name),
                );
            }
        }
    }
}

/// `MonitoringSystem::from_records` is a lossless shim: replaying the
/// same record buffer through a builder session is bit-exact in every
/// monitor-visible result, for every monitor and both engines.
#[test]
fn session_matches_from_records() {
    for monitor in all_monitors() {
        let name = monitor.name();
        let b = suite_for(name).remove(0);
        let (records, instrs) =
            fade_repro::system::record_trace_prefix(&b, name, cfg().seed, 8_000);
        for batched in [false, true] {
            let mut legacy =
                MonitoringSystem::from_records(&b, name, &cfg(), records.clone());
            if batched {
                legacy.run_batched(instrs);
            } else {
                legacy.run_instrs_exact(instrs);
            }
            legacy.drain();

            let engine = if batched { Engine::batched() } else { Engine::Cycle };
            let mut session = Session::builder()
                .monitor(name)
                .source((b.clone(), records.clone()))
                .engine(engine)
                .config(cfg())
                .build()
                .unwrap();
            session.run_exact(instrs).unwrap();
            session.drain().unwrap();

            assert_monitor_visible_equal(
                &legacy,
                &session,
                &format!("{name}/{} from_records batched={batched}", b.name),
            );
            assert_eq!(
                legacy.cycles(),
                session.cycles(),
                "{name}/{}: same engine, same records — even timing is exact",
                b.name
            );
        }
    }
}

/// `MonitoringSystem::from_trace_file` is a lossless shim: a `.fadet`
/// file streamed through a builder session (profile resolved from the
/// file's own header, like the legacy path) is bit-exact.
#[test]
fn session_matches_from_trace_file() {
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).unwrap();
    for (monitor, bench_name) in [("MemLeak", "gcc"), ("AddrCheck", "hmmer"), ("AtomCheck", "water")]
    {
        let b = bench::by_name(bench_name).unwrap();
        let (records, instrs) =
            fade_repro::system::record_trace_prefix(&b, monitor, cfg().seed, 8_000);
        let path = dir.join(format!("session_eq_{bench_name}_{monitor}.fadet"));
        write_trace_file(&path, &TraceMeta::new(bench_name, cfg().seed), &records).unwrap();

        let mut legacy = MonitoringSystem::from_trace_file(&path, monitor, &cfg()).unwrap();
        legacy.run_instrs_exact(instrs);
        legacy.drain();

        let mut session = Session::builder()
            .monitor(monitor)
            .source(path.as_path())
            .config(cfg())
            .build()
            .unwrap();
        session.run_exact(instrs).unwrap();
        session.drain().unwrap();

        assert_monitor_visible_equal(
            &legacy,
            &session,
            &format!("{monitor}/{bench_name} from_trace_file"),
        );
        assert_eq!(legacy.cycles(), session.cycles(), "{monitor}/{bench_name}: timing");
    }
}

/// `with_source` (the custom-source hook) is a lossless shim for
/// arbitrary [`TraceSource`] implementations.
#[test]
fn session_matches_with_source() {
    let b = bench::by_name("mcf").unwrap();
    let (records, instrs) =
        fade_repro::system::record_trace_prefix(&b, "MemCheck", cfg().seed, 6_000);

    let mut legacy = MonitoringSystem::with_source(
        &b,
        "MemCheck",
        &cfg(),
        Box::new(ReplayBuffer::new(records.clone())),
    );
    legacy.run_instrs_exact(instrs);
    legacy.drain();

    let mut session = Session::builder()
        .monitor("MemCheck")
        .trace_source(b.clone(), Box::new(ReplayBuffer::new(records)))
        .config(cfg())
        .build()
        .unwrap();
    session.run_exact(instrs).unwrap();
    session.drain().unwrap();

    assert_monitor_visible_equal(&legacy, &session, "MemCheck/mcf with_source");
}

/// `with_monitor` and `with_program` are lossless shims for
/// caller-provided monitors and programs.
#[test]
fn session_matches_with_monitor_and_with_program() {
    let b = bench::by_name("gcc").unwrap();

    let mut legacy = MonitoringSystem::with_monitor(
        &b,
        monitor_by_name("MemLeak").unwrap(),
        &cfg(),
    );
    legacy.run_instrs_exact(20_000);
    legacy.drain();
    let mut session = Session::builder()
        .monitor(monitor_by_name("MemLeak").unwrap())
        .source(&b)
        .config(cfg())
        .build()
        .unwrap();
    session.run_exact(20_000).unwrap();
    session.drain().unwrap();
    assert_monitor_visible_equal(&legacy, &session, "MemLeak/gcc with_monitor");
    assert_eq!(legacy.cycles(), session.cycles(), "with_monitor timing");

    let program = fade_repro::monitors::MemCheck::new().program_multi_shot();
    let mut legacy = MonitoringSystem::with_program(
        &b,
        monitor_by_name("MemCheck").unwrap(),
        program.clone(),
        &cfg(),
    );
    legacy.run_instrs_exact(20_000);
    legacy.drain();
    let mut session = Session::builder()
        .monitor("MemCheck")
        .source(&b)
        .program(program)
        .config(cfg())
        .build()
        .unwrap();
    session.run_exact(20_000).unwrap();
    session.drain().unwrap();
    assert_monitor_visible_equal(&legacy, &session, "MemCheck/gcc with_program");
    assert_eq!(legacy.cycles(), session.cycles(), "with_program timing");
}
